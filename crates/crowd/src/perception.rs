//! Human perception of "ready to use".
//!
//! This is the generative counterpart of everything the platform
//! measures: a participant watches a capture, forms an internal "the page
//! is ready" moment according to their own criterion (§6 shows
//! participants genuinely differ — main-content people, wait-for-
//! everything people, first-impression people), perceives it with noise,
//! overshoots with the slider (§3.2 observed both trusted and paid
//! participants overshooting), and then negotiates with the frame-
//! selection helper (Fig. 3).
//!
//! `UserPerceivedPLT` in the reproduction is therefore *generated* here
//! and *measured back* by `eyeorg-core`'s pipeline; the gap between the
//! two is precisely what Fig. 7 quantifies.

use eyeorg_net::SimTime;
use eyeorg_video::{FrameTimeline, Video};
use eyeorg_stats::rng::Rng;

use crate::participant::{Participant, ParticipantClass, Persona, ReadinessCriterion};

/// The moment a page becomes "ready" under a given criterion, extracted
/// from the capture's viewport-visible paint stream.
///
/// * `FirstImpression` — the document has painted its first viewport
///   bands and 60 % of the viewport's eventually-painted primary area is
///   in place.
/// * `MainContent` — the last *primary* (document/image) initial paint.
/// * `AllContent` — the last initial paint of any kind (ads and widgets
///   included; creative rotations do not count — §6's "I know the page
///   isn't totally done … I just don't care" refers to content, not ad
///   churn).
pub fn true_ready_time(video: &Video, criterion: ReadinessCriterion) -> SimTime {
    let fold = video.trace().fold_y;
    let viewport_initial = || {
        video
            .trace()
            .paints
            .iter()
            .filter(move |p| p.generation == 0)
            .filter_map(move |p| p.rect.above_fold(fold).map(|r| (p, r)))
    };
    match criterion {
        ReadinessCriterion::MainContent => viewport_initial()
            // Everything except ads counts as "main" content: §6's
            // comments single out ads as the thing people don't wait
            // for, while social widgets read as page content.
            .filter(|(p, _)| p.kind != eyeorg_browser::PaintKind::Ad)
            .map(|(p, _)| p.time)
            .next_back()
            .unwrap_or(SimTime::ZERO),
        ReadinessCriterion::AllContent => {
            viewport_initial().map(|(p, _)| p.time).next_back().unwrap_or(SimTime::ZERO)
        }
        ReadinessCriterion::FirstImpression => {
            let total: u64 = viewport_initial()
                .filter(|(p, _)| p.kind.is_primary())
                .map(|(_, r)| r.area())
                .sum();
            if total == 0 {
                return SimTime::ZERO;
            }
            let target = (total as f64 * 0.6) as u64;
            let mut acc = 0u64;
            for (p, r) in viewport_initial().filter(|(p, _)| p.kind.is_primary()) {
                acc += r.area();
                if acc >= target {
                    return p.time;
                }
            }
            SimTime::ZERO
        }
    }
}

/// The ready moment under each of the three criteria, extracted once per
/// video so batch engines index by criterion instead of rescanning the
/// paint stream per response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTimes {
    /// [`ReadinessCriterion::MainContent`].
    pub main_content: SimTime,
    /// [`ReadinessCriterion::AllContent`].
    pub all_content: SimTime,
    /// [`ReadinessCriterion::FirstImpression`].
    pub first_impression: SimTime,
}

impl ReadyTimes {
    /// Extract all three ready moments from one capture.
    pub fn of(video: &Video) -> ReadyTimes {
        ReadyTimes {
            main_content: true_ready_time(video, ReadinessCriterion::MainContent),
            all_content: true_ready_time(video, ReadinessCriterion::AllContent),
            first_impression: true_ready_time(video, ReadinessCriterion::FirstImpression),
        }
    }

    /// The ready moment for one criterion.
    pub fn get(&self, criterion: ReadinessCriterion) -> SimTime {
        match criterion {
            ReadinessCriterion::MainContent => self.main_content,
            ReadinessCriterion::AllContent => self.all_content,
            ReadinessCriterion::FirstImpression => self.first_impression,
        }
    }
}

/// Frame clock of a capture: everything the slider math needs, without
/// the capture itself. Mirrors `Video::frame_time`/`frame_index_at`
/// exactly (same integer arithmetic, same clamping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameClock {
    dur_us: u64,
    step_us: u64,
    frame_count: usize,
}

impl FrameClock {
    fn of(video: &Video) -> FrameClock {
        FrameClock {
            dur_us: video.duration().as_micros().max(1),
            step_us: 1_000_000 / u64::from(video.fps()),
            frame_count: video.frame_count(),
        }
    }

    fn frame_index_at(&self, t: SimTime) -> usize {
        ((t.as_micros() / self.step_us) as usize).min(self.frame_count - 1)
    }

    fn frame_time(&self, i: usize) -> SimTime {
        SimTime::from_micros(i.min(self.frame_count - 1) as u64 * self.step_us)
    }
}

/// Per-stimulus constants of the timeline response model — the ready
/// moments, the first-visible floor, and the frame clock — extracted
/// once so the flat campaign engine's inner loop touches no `Video`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineStimulusProfile {
    clock: FrameClock,
    ready: ReadyTimes,
    first_visible_us: f64,
}

impl TimelineStimulusProfile {
    /// Extract the response-model constants for one capture.
    pub fn of(video: &Video) -> TimelineStimulusProfile {
        TimelineStimulusProfile {
            clock: FrameClock::of(video),
            ready: ReadyTimes::of(video),
            first_visible_us: first_visible_us(video),
        }
    }
}

/// Time of the first viewport-visible paint, in µs (the floor below
/// which no coherent participant reports "ready").
fn first_visible_us(video: &Video) -> f64 {
    let fold = video.trace().fold_y;
    video
        .trace()
        .paints
        .iter()
        .find(|p| p.rect.above_fold(fold).is_some())
        .map(|p| p.time.as_micros() as f64)
        .unwrap_or(0.0)
}

/// One timeline-test interaction, end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineResponse {
    /// The participant's internal (noisy) ready moment.
    pub perceived: SimTime,
    /// Where they initially left the slider (frame-quantised; includes
    /// overshoot).
    pub slider: SimTime,
    /// The frame helper's rewind suggestion for that slider position.
    pub helper: SimTime,
    /// What they submitted.
    pub submitted: SimTime,
    /// Whether they accepted the helper's suggestion.
    pub accepted_helper: bool,
}

/// Simulate one participant answering one timeline test.
///
/// `video_label` identifies the video so that the same participant gives
/// independent (but reproducible) answers across their six videos.
///
/// Convenience wrapper that materialises the frame timeline per call;
/// campaign-scale simulation should build one [`FrameTimeline`] per video
/// and use [`timeline_response_cached`].
pub fn timeline_response(
    video: &Video,
    participant: &Participant,
    video_label: &str,
) -> TimelineResponse {
    let mut frames = FrameTimeline::of(video);
    timeline_response_cached(video, &mut frames, participant, video_label)
}

/// [`timeline_response`] against a pre-materialised frame timeline.
pub fn timeline_response_cached(
    video: &Video,
    frames: &mut FrameTimeline,
    participant: &Participant,
    video_label: &str,
) -> TimelineResponse {
    timeline_response_with(video, &mut |i| frames.rewind(i), participant, video_label)
}

/// [`timeline_response`] against a *shared* frame timeline — the form the
/// parallel campaign engine uses, with one immutable [`FrameTimeline`]
/// per stimulus (rewinds precomputed) serving every worker thread.
/// Bit-identical to [`timeline_response_cached`] for the same inputs.
pub fn timeline_response_shared(
    video: &Video,
    frames: &FrameTimeline,
    participant: &Participant,
    video_label: &str,
) -> TimelineResponse {
    timeline_response_with(video, &mut |i| frames.rewind_at(i), participant, video_label)
}

/// Core of the timeline interaction, abstracted over how a rewind is
/// looked up (memoising `&mut` path vs. shared precomputed path).
fn timeline_response_with(
    video: &Video,
    rewind: &mut dyn FnMut(usize) -> usize,
    participant: &Participant,
    video_label: &str,
) -> TimelineResponse {
    timeline_response_shared_with_rng(
        video,
        rewind,
        &participant.persona(),
        response_rng(participant.seed, video_label),
    )
}

/// The shared-timeline path with the leaf RNG supplied by the caller —
/// the streaming engine's fast-path entry (it hoists the per-participant
/// `"perception"` parent derivation out of its stimulus loop).
pub(crate) fn timeline_response_shared_with_rng(
    video: &Video,
    rewind: &mut dyn FnMut(usize) -> usize,
    participant: &Persona,
    rng: Rng,
) -> TimelineResponse {
    let clock = FrameClock::of(video);
    // Ready moment and first-visible floor are looked up lazily: the
    // clicker/bot branch never consults them, and eagerly extracting all
    // three criteria would triple this path's paint-stream scans.
    timeline_response_core(
        &clock,
        &mut |criterion| (true_ready_time(video, criterion), first_visible_us(video)),
        rewind,
        participant,
        rng,
    )
}

/// [`timeline_response`] against fully precomputed per-stimulus
/// constants and a flat rewind table — the batch engine's inner-loop
/// entry point: no `Video`, no timeline, no allocation. Bit-identical
/// to [`timeline_response_shared`] for matching inputs (both funnel
/// into the same core).
///
/// `rewinds[i]` must be the rewind suggestion for frame `i`
/// (`FrameTimeline::rewind_table`).
pub fn timeline_response_flat(
    profile: &TimelineStimulusProfile,
    rewinds: &[usize],
    participant: &Persona,
    video_label: &str,
) -> TimelineResponse {
    timeline_response_flat_with_rng(
        profile,
        rewinds,
        participant,
        response_rng(participant.seed, video_label),
    )
}

/// [`timeline_response_flat`] with the leaf RNG supplied by the caller —
/// the flat engine's fast-path entry (RNG built from a hoisted
/// per-participant `"perception"` parent instead of a per-cell
/// double derivation).
pub(crate) fn timeline_response_flat_with_rng(
    profile: &TimelineStimulusProfile,
    rewinds: &[usize],
    participant: &Persona,
    rng: Rng,
) -> TimelineResponse {
    timeline_response_core(
        &profile.clock,
        &mut |criterion| (profile.ready.get(criterion), profile.first_visible_us),
        &mut |i| rewinds[i],
        participant,
        rng,
    )
}

/// The single implementation behind every timeline-response entry point.
/// `ready_of(criterion)` returns the true ready moment under `criterion`
/// plus the first-visible floor in µs; it is only consulted on the
/// coherent-participant branch. `rng` must be seeded from the
/// participant's `"perception"` stream for the video's label.
fn timeline_response_core(
    clock: &FrameClock,
    ready_of: &mut dyn FnMut(ReadinessCriterion) -> (SimTime, f64),
    rewind: &mut dyn FnMut(usize) -> usize,
    participant: &Persona,
    mut rng: Rng,
) -> TimelineResponse {
    let dur_us = clock.dur_us;

    if matches!(participant.class, ParticipantClass::RandomClicker | ParticipantClass::Bot)
        && rng.random_bool(if participant.class == ParticipantClass::Bot { 1.0 } else { 0.6 })
    {
        // Pays no attention: drags the slider somewhere — often all the
        // way to an end, the head/tail pattern of Fig. 6a.
        let t = if rng.random_bool(0.5) {
            let edge = if rng.random_bool(0.5) { 0.02 } else { 0.98 };
            SimTime::from_micros((dur_us as f64 * edge) as u64)
        } else {
            SimTime::from_micros(rng.random_range(0..dur_us))
        };
        // Quantising returns the frame's own time, so the slider's frame
        // index is the one just computed — no second division.
        let slider_frame = clock.frame_index_at(t);
        let slider = clock.frame_time(slider_frame);
        // Blindly accepts whatever the helper proposes.
        let helper_frame = rewind(slider_frame);
        let helper = clock.frame_time(helper_frame);
        return TimelineResponse {
            perceived: t,
            slider,
            helper,
            submitted: helper,
            accepted_helper: true,
        };
    }

    let (ready, first_visible) = ready_of(participant.readiness);
    // Multiplicative perception noise (Weber-like: error scales with the
    // magnitude being judged).
    let z: f64 = crate::dist_normal(&mut rng);
    // Participants are *watching* the video: no one coherent reports
    // "ready" on a frame where nothing has appeared yet, so perception
    // is floored at the first viewport-visible paint.
    let perceived_us = (ready.as_micros() as f64
        * (participant.perception_noise * z).exp())
    .max(first_visible);
    let perceived = SimTime::from_micros(perceived_us.min(dur_us as f64) as u64);
    // Scrubbing overshoot: participants settle late, then (maybe) let
    // the helper pull them back.
    let overshoot_frac = participant.overshoot * rng.random_range(0.3..1.0);
    let slider_us = (perceived_us * (1.0 + overshoot_frac)).min(dur_us as f64);
    // As above: the quantised slider time maps back to the same frame
    // index, so compute it once and reuse it for the helper lookup.
    let slider_frame = clock.frame_index_at(SimTime::from_micros(slider_us as u64));
    let slider = clock.frame_time(slider_frame);

    let helper_frame = rewind(slider_frame);
    let helper = clock.frame_time(helper_frame);

    // Acceptance: participants accept the rewind when it does not
    // contradict their internal ready moment by much.
    let disagreement =
        (perceived_us - helper.as_micros() as f64).abs() / perceived_us.max(500_000.0);
    let accept_p = match participant.class {
        ParticipantClass::Diligent | ParticipantClass::Average => {
            if disagreement < 0.25 {
                0.92
            } else {
                0.25
            }
        }
        ParticipantClass::Sloppy => 0.75,
        ParticipantClass::Frenetic => 0.6,
        ParticipantClass::RandomClicker | ParticipantClass::Bot => 0.85,
    };
    let accepted_helper = rng.random_bool(accept_p);
    let submitted = if accepted_helper { helper } else { slider };
    TimelineResponse { perceived, slider, helper, submitted, accepted_helper }
}

/// Outcome of the timeline control question (a nearly-blank frame is
/// proposed as the rewind; §3.3): `true` = the participant correctly
/// kept their own choice.
pub fn timeline_control_passes(participant: &Participant, video_label: &str) -> bool {
    timeline_control_passes_flat(&participant.persona(), &format!("ctrl-{video_label}"))
}

/// [`timeline_control_passes`] with the derived control label (the
/// `"ctrl-"`-prefixed video label) already built — the batch engine
/// precomputes the string once per stimulus instead of once per row.
pub fn timeline_control_passes_flat(participant: &Persona, ctrl_label: &str) -> bool {
    timeline_control_with_rng(participant, response_rng(participant.seed, ctrl_label))
}

/// [`timeline_control_passes_flat`] with the control-stream RNG supplied
/// by the caller (fast-path entry).
pub(crate) fn timeline_control_with_rng(participant: &Persona, mut rng: Rng) -> bool {
    let reject_p = match participant.class {
        ParticipantClass::Diligent => 0.995,
        ParticipantClass::Average => 0.98,
        ParticipantClass::Sloppy => 0.90,
        ParticipantClass::Frenetic => 0.92,
        ParticipantClass::RandomClicker => 0.40,
        ParticipantClass::Bot => 0.25,
    };
    rng.random_bool(reject_p)
}

fn response_rng(seed: eyeorg_stats::Seed, label: &str) -> Rng {
    Rng::seed_from_u64(seed.derive("perception").derive(label).value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::PopulationProfile;
    use eyeorg_stats::Seed;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_net::SimDuration;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(30), 0, SiteClass::News);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(30));
        Video::capture(trace, 10, SimDuration::from_secs(5))
    }

    #[test]
    fn flat_profile_path_matches_shared_path() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        tl.precompute_rewinds();
        let table = tl.rewind_table();
        let profile = TimelineStimulusProfile::of(&v);
        let pop = PopulationProfile::paid().generate(Seed(66), 150);
        for p in &pop {
            let shared = timeline_response_shared(&v, &tl, p, "tl-3");
            let flat = timeline_response_flat(&profile, &table, &p.persona(), "tl-3");
            assert_eq!(shared, flat, "class {:?}", p.class);
            assert_eq!(
                timeline_control_passes(p, "tl-3"),
                timeline_control_passes_flat(&p.persona(), "ctrl-tl-3"),
            );
        }
    }

    #[test]
    fn criteria_are_ordered() {
        let v = video();
        let fi = true_ready_time(&v, ReadinessCriterion::FirstImpression);
        let mc = true_ready_time(&v, ReadinessCriterion::MainContent);
        let ac = true_ready_time(&v, ReadinessCriterion::AllContent);
        assert!(fi <= mc, "first impression before main content");
        assert!(mc <= ac, "main content before everything");
        assert!(fi > SimTime::ZERO);
    }

    #[test]
    fn responses_deterministic_per_label() {
        let v = video();
        let p = &PopulationProfile::paid().generate(Seed(1), 1)[0];
        assert_eq!(timeline_response(&v, p, "v1"), timeline_response(&v, p, "v1"));
        assert_ne!(
            timeline_response(&v, p, "v1").submitted,
            timeline_response(&v, p, "v2").submitted
        );
    }

    #[test]
    fn slider_overshoots_then_helper_rewinds() {
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(2), 60);
        let mut slid_late = 0;
        let mut helper_not_after_slider = true;
        for p in pop.iter().filter(|p| p.class != ParticipantClass::RandomClicker) {
            let r = timeline_response(&v, p, "v1");
            if r.slider >= r.perceived {
                slid_late += 1;
            }
            if r.helper > r.slider {
                helper_not_after_slider = false;
            }
        }
        assert!(slid_late > 40, "overshoot should dominate: {slid_late}");
        assert!(helper_not_after_slider, "helper only ever rewinds");
    }

    #[test]
    fn submissions_cluster_near_ready_for_good_participants() {
        let v = video();
        let pop = PopulationProfile::trusted().generate(Seed(3), 40);
        for p in &pop {
            let r = timeline_response(&v, p, "v1");
            let ready = true_ready_time(&v, p.readiness).as_secs_f64();
            let sub = r.submitted.as_secs_f64();
            assert!(
                (sub - ready).abs() < ready.max(1.0) * 0.8 + 1.0,
                "submission {sub} wildly off ready {ready} for {:?}",
                p.class
            );
        }
    }

    #[test]
    fn control_pass_rates_by_class() {
        let pop = PopulationProfile::paid().generate(Seed(4), 3000);
        let rate = |class: ParticipantClass| {
            let subset: Vec<_> = pop.iter().filter(|p| p.class == class).collect();
            let passed = subset
                .iter()
                .filter(|p| timeline_control_passes(p, "c1"))
                .count();
            passed as f64 / subset.len().max(1) as f64
        };
        assert!(rate(ParticipantClass::Diligent) > 0.97);
        assert!(rate(ParticipantClass::RandomClicker) < 0.6);
    }

    #[test]
    fn random_clickers_spread_over_video() {
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(5), 400);
        let clickers: Vec<_> =
            pop.iter().filter(|p| p.class == ParticipantClass::RandomClicker).collect();
        assert!(clickers.len() > 10);
        let subs: Vec<f64> = clickers
            .iter()
            .map(|p| timeline_response(&v, p, "v1").submitted.as_secs_f64())
            .collect();
        let spread = eyeorg_stats::Summary::of(&subs).unwrap();
        // Their answers spread across a large chunk of the video, unlike
        // coherent participants.
        assert!(spread.stdev > 0.15 * v.duration().as_secs_f64(), "stdev {}", spread.stdev);
    }
}
