//! # eyeorg-metrics
//!
//! Automatic page-load-time metrics, computed from captures the way a
//! WebPageTest-style pipeline extracts them from real videos and HARs.
//!
//! The whole point of the paper's first campaign (§5.2, Fig. 7) is to
//! hold these machine metrics up against crowdsourced human perception:
//! OnLoad and FirstVisualChange correlate strongly with
//! `UserPerceivedPLT` (0.85/0.84 in the paper), SpeedIndex less (0.68),
//! LastVisualChange barely (0.47). This crate supplies the machine side
//! of that comparison.
//!
//! * [`plt`] — [`plt::PltMetrics`]: OnLoad, SpeedIndex,
//!   First/LastVisualChange.
//! * [`progress`] — the visual-completeness curve underlying SpeedIndex.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plt;
pub mod progress;

pub use plt::{compute_metrics, speed_index, PltMetrics, METRIC_NAMES};
pub use progress::{time_to_completeness, visual_progress_curve};
