//! Scale harness for the streaming and flat data-plane campaign engines.
//!
//! Two modes:
//!
//! * `--smoke` — small configuration used by `scripts/verify.sh` and CI:
//!   runs the materializing engine once, then the streaming engine and
//!   the flat data-plane engine across several shard sizes and thread
//!   knobs, and **exits non-zero** when any digest or
//!   observability-counter fingerprint diverges. With
//!   `--fingerprint-out PATH` it also writes the streaming and flat
//!   fingerprints so the caller can `cmp` runs at different
//!   `EYEORG_THREADS`.
//! * full (default) — the headline measurement: a 1,000,000-participant
//!   × 20-stimulus timeline campaign through both engines in bounded
//!   memory, plus a single-thread old-vs-new comparison and a thread
//!   sweep (1 / 2 / auto via the `ExperimentConfig::threads` knob).
//!   Gates: (a) the flat digest is byte-identical to the streaming
//!   digest at full scale and at every sweep point, (b) retained bytes
//!   stay bounded, (c) the flat engine clears the single-thread
//!   regression floor over the streaming engine (see
//!   [`FLAT_SPEEDUP_FLOOR`] for why the floor sits below the original
//!   roadmap target), (d) the streaming engine keeps its ≥10x
//!   advantage over the materializing engine, and (e) on boxes with
//!   more than one hardware thread, the flat auto-thread sweep clears
//!   [`PARALLEL_EFFICIENCY_FLOOR`] (on a 1-core box the measurement is
//!   recorded but the gate is disarmed — pool = 1 reads ~1.0 by
//!   definition). Writes `results/BENCH_scale.json`.
//!
//! Memory is reported two ways: the digest's own retained-bytes
//! accounting (exact, hardware-independent) and the process peak-RSS
//! proxy from `/proc/self/status` (`VmHWM`, Linux-only, informational).

use std::time::Instant;

use eyeorg_bench::campaigns::capture_browser;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const FULL_PARTICIPANTS: usize = 1_000_000;
const FULL_SITES: usize = 20;
const BOUND_PROBE_PARTICIPANTS: usize = 100_000;
const MATERIALIZING_CAP: usize = 20_000;
/// Crowd size of the single-thread old-vs-new comparison and the
/// thread sweep (big enough to dominate fixed costs, small enough that
/// the 1-thread streaming run stays cheap).
const SWEEP_PARTICIPANTS: usize = 200_000;
/// Shard size of the headline runs. The fast-path arena (DESIGN.md
/// §3k) keeps per-cell sessions, leaf seeds and expanded RNG blocks
/// resident for a whole shard, so the sweet spot moved down from the
/// pre-fast-path 8192: 512 rows × 6 cells keeps the arena inside
/// cache and measures ~20% faster on the reference box. Digest
/// identity across shard sizes is gated below (and in the smoke
/// matrix), so the knob is pure tuning.
const FULL_SHARD: usize = 512;
/// Contrast shard for the full-scale identity gate (the pre-fast-path
/// headline size).
const ALT_SHARD: usize = 8192;

const SMOKE_SITES: usize = 4;
const SMOKE_PARTICIPANTS: usize = 400;

/// Single-thread flat-vs-streaming hard regression floor. The roadmap
/// aimed for 3x (band 5–10x), but that target predates the measured
/// cost split: ~70% of the streaming engine's single-thread time was
/// the *seeded behavioural model* (persona + session + response
/// draws), which capped the ratio near 1.5x (Amdahl). The §3k fast
/// path shrank that model term for **both** engines — draw-exact, so
/// byte-identity holds — which lowers the ceiling on the *ratio* even
/// as both absolute times improve; `perf_model` now gates the model
/// term itself (1.8x gate), and this floor protects the flat engine's
/// remaining structural win (arena batching + bulk seeding) from
/// regressing: post-fast-path the ratio measures ~1.3x on the
/// reference box, and the floor sits a noise margin below it. The
/// measured ratio and the roadmap target are both recorded in
/// `BENCH_scale.json`.
const FLAT_SPEEDUP_FLOOR: f64 = 1.2;
/// Roadmap item 4's original single-thread target, recorded for
/// comparison against the measured ratio.
const FLAT_SPEEDUP_TARGET: f64 = 3.0;
/// Parallel-efficiency floor for the flat auto-thread sweep
/// (auto-thread speedup over 1 thread, divided by the worker pool
/// used). Gated only when the box actually has more than one hardware
/// thread: on a 1-core box the sweep degenerates to pool = 1 and the
/// ratio reads ~1.0 *by definition*, so gating (or advertising) it
/// there would be vacuous — the residual of ROADMAP item 4.
const PARALLEL_EFFICIENCY_FLOOR: f64 = 0.6;

/// Peak resident set size in bytes (`VmHWM`), or 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn stimuli(sites: usize, repeats: usize, seed: Seed) -> Vec<TimelineStimulus> {
    let corpus = alexa_like(seed.derive("sites"), sites);
    let capture = CaptureConfig { repeats, ..CaptureConfig::default() };
    timeline_stimuli(&corpus, &capture_browser(), &capture, seed.derive("capture"))
}

fn stream_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
    shard: usize,
    threads: usize,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let t = Instant::now();
    let digest = stream_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
    );
    (digest, t.elapsed().as_secs_f64())
}

fn flat_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
    shard: usize,
    threads: usize,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let t = Instant::now();
    let digest = flat_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
    );
    (digest, t.elapsed().as_secs_f64())
}

fn materializing_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig::default();
    let t = Instant::now();
    let campaign = run_timeline_campaign(stimuli.to_vec(), &CrowdFlower, n, &cfg, seed);
    let report = filter_timeline(&campaign, &paper_pipeline());
    let digest = digest_timeline(&campaign, &report, n, &DigestParams::default());
    (digest, t.elapsed().as_secs_f64())
}

fn smoke(fp_out: Option<String>) {
    let seed = Seed(2016).derive("perf-scale-smoke");
    let stimuli = stimuli(SMOKE_SITES, 2, seed);
    let n = SMOKE_PARTICIPANTS;

    let (reference, mat_secs) = materializing_run(&stimuli, n, seed.derive("run"));
    let reference_fp = reference.fingerprint();
    let reference_counters = eyeorg_obs::snapshot("scale-smoke", 0).counter_fingerprint();

    let mut identical = true;
    let mut streaming_fp = String::new();
    let mut streaming_counters = String::new();
    for shard in [64usize, 128, n + 1] {
        let (digest, secs) = stream_run(&stimuli, n, seed.derive("run"), shard, 0);
        let fp = digest.fingerprint();
        let counters = eyeorg_obs::snapshot("scale-smoke", 0).counter_fingerprint();
        if fp != reference_fp {
            identical = false;
            eprintln!("DIVERGENCE: shard={shard} digest differs from materializing engine");
        }
        if counters != reference_counters {
            identical = false;
            eprintln!("DIVERGENCE: shard={shard} counters differ from materializing engine");
        }
        println!("smoke shard={shard:>4}: {secs:.3}s (materializing {mat_secs:.3}s)");
        streaming_fp = fp;
        streaming_counters = counters;
    }

    // Flat data-plane engine divergence gate: same reference, across
    // shard sizes *and* the in-process thread knob.
    let mut flat_fp = String::new();
    let mut flat_counters = String::new();
    for shard in [64usize, 128, n + 1] {
        for threads in [1usize, 2, 0] {
            let (digest, secs) = flat_run(&stimuli, n, seed.derive("run"), shard, threads);
            let fp = digest.fingerprint();
            let counters = eyeorg_obs::snapshot("scale-smoke", threads).counter_fingerprint();
            if fp != reference_fp {
                identical = false;
                eprintln!(
                    "DIVERGENCE: flat shard={shard} threads={threads} digest differs \
                     from materializing engine"
                );
            }
            if counters != reference_counters {
                identical = false;
                eprintln!(
                    "DIVERGENCE: flat shard={shard} threads={threads} counters differ \
                     from materializing engine"
                );
            }
            println!("smoke flat shard={shard:>4} threads={threads}: {secs:.3}s");
            flat_fp = fp;
            flat_counters = counters;
        }
    }

    if let Some(path) = fp_out {
        // Digest + counter fingerprints of the streaming and flat runs;
        // callers compare this file byte-for-byte across EYEORG_THREADS
        // values.
        let contents =
            format!("{streaming_fp}\n{streaming_counters}\n{flat_fp}\n{flat_counters}\n");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create fingerprint dir");
        }
        std::fs::write(&path, contents).expect("write fingerprint file");
        println!("wrote {path}");
    }

    if !identical {
        eprintln!("FAIL: engine diverged from materializing reference");
        std::process::exit(1);
    }
    println!("smoke OK: streaming == flat == materializing across shard sizes and threads");
}

fn full() {
    let seed = Seed(2016).derive("perf-scale");
    let stimuli = stimuli(FULL_SITES, 3, seed);

    // Headline streaming run: a million participants, bounded memory.
    let (full_digest, full_secs) =
        stream_run(&stimuli, FULL_PARTICIPANTS, seed.derive("run"), FULL_SHARD, 0);
    let streaming_pps = FULL_PARTICIPANTS as f64 / full_secs;
    let full_retained = full_digest.retained_bytes();
    println!(
        "streaming  n={FULL_PARTICIPANTS} shard={FULL_SHARD}: {full_secs:.2}s \
         ({streaming_pps:.0} participants/sec, digest {full_retained} bytes)"
    );

    // Headline flat run: same campaign through the flat data plane.
    let (flat_digest, flat_secs) =
        flat_run(&stimuli, FULL_PARTICIPANTS, seed.derive("run"), FULL_SHARD, 0);
    let flat_pps = FULL_PARTICIPANTS as f64 / flat_secs;
    let flat_retained = flat_digest.retained_bytes();
    println!(
        "flat       n={FULL_PARTICIPANTS} shard={FULL_SHARD}: {flat_secs:.2}s \
         ({flat_pps:.0} participants/sec, digest {flat_retained} bytes)"
    );
    let mut identical = true;
    if flat_digest.fingerprint() != full_digest.fingerprint() {
        identical = false;
        eprintln!("DIVERGENCE: flat digest differs from streaming at n={FULL_PARTICIPANTS}");
    }

    // Shard-size invariance gate at full scale.
    let (alt_digest, alt_secs) =
        stream_run(&stimuli, FULL_PARTICIPANTS, seed.derive("run"), ALT_SHARD, 0);
    if alt_digest.fingerprint() != full_digest.fingerprint() {
        identical = false;
        eprintln!("DIVERGENCE: shard={ALT_SHARD} digest differs from shard={FULL_SHARD}");
    }
    println!("streaming  n={FULL_PARTICIPANTS} shard={ALT_SHARD}: {alt_secs:.2}s");

    // Old-vs-new, single thread: the flat engine's structure-of-arrays
    // batching against the streaming engine's row-at-a-time loop, both
    // pinned to one worker so the comparison is allocation/layout, not
    // parallelism.
    let (sweep_ref, stream_1t_secs) =
        stream_run(&stimuli, SWEEP_PARTICIPANTS, seed.derive("sweep"), FULL_SHARD, 1);
    let sweep_ref_fp = sweep_ref.fingerprint();
    let stream_1t_pps = SWEEP_PARTICIPANTS as f64 / stream_1t_secs;
    println!(
        "streaming  n={SWEEP_PARTICIPANTS} threads=1: {stream_1t_secs:.2}s \
         ({stream_1t_pps:.0} participants/sec)"
    );

    // Thread sweep of the flat engine via the in-process knob; every
    // point must reproduce the 1-thread streaming digest byte for byte.
    let mut flat_sweep = Vec::new(); // (threads, secs, pps)
    for threads in [1usize, 2, 0] {
        let (d, secs) =
            flat_run(&stimuli, SWEEP_PARTICIPANTS, seed.derive("sweep"), FULL_SHARD, threads);
        if d.fingerprint() != sweep_ref_fp {
            identical = false;
            eprintln!("DIVERGENCE: flat threads={threads} digest differs at n={SWEEP_PARTICIPANTS}");
        }
        let pps = SWEEP_PARTICIPANTS as f64 / secs;
        println!("flat       n={SWEEP_PARTICIPANTS} threads={threads}: {secs:.2}s ({pps:.0} participants/sec)");
        flat_sweep.push((threads, secs, pps));
    }
    let flat_1t_pps = flat_sweep[0].2;
    let flat_2t_pps = flat_sweep[1].2;
    let flat_auto_pps = flat_sweep[2].2;
    let flat_speedup_1t = flat_1t_pps / stream_1t_pps;
    let auto_threads = eyeorg_stats::effective_pool(eyeorg_stats::resolve_threads(0));
    // Parallel efficiency: auto-thread speedup over 1 thread, divided by
    // the pool actually used (1.0 = perfect scaling). Only a real
    // measurement when the hardware offers >1 thread; a 1-core box
    // degrades the sweep to pool=1 and the ratio reads ~1.0 by
    // definition, so the floor below is disarmed there.
    let parallel_efficiency = (flat_auto_pps / flat_1t_pps) / auto_threads.max(1) as f64;
    // lint:allow(D8): hw_parallelism only arms the efficiency gate and annotates JSON metadata, never digest bytes
    let hw_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let par_eff_gated = hw_parallelism > 1;
    println!(
        "flat vs streaming, 1 thread: {flat_speedup_1t:.1}x \
         (parallel efficiency at {auto_threads} threads: {parallel_efficiency:.2}{})",
        if par_eff_gated { "" } else { ", ungated: 1 hardware thread" }
    );

    // Boundedness gate: once every sketch has spilled, the digest's
    // retained bytes are a constant — the same at 100k and 1M.
    let (probe_digest, _) =
        flat_run(&stimuli, BOUND_PROBE_PARTICIPANTS, seed.derive("run"), FULL_SHARD, 0);
    let probe_retained = probe_digest.retained_bytes();
    let bounded = full_retained <= probe_retained && flat_retained <= probe_retained;
    if !bounded {
        eprintln!(
            "FAIL: retained bytes grew with n ({probe_retained} at \
             n={BOUND_PROBE_PARTICIPANTS} vs {full_retained}/{flat_retained} at \
             n={FULL_PARTICIPANTS})"
        );
    }

    // Throughput comparison: the materializing engine at a capped crowd
    // size (its row-retention and per-participant row scans make the
    // full million impractical — which is the point of the streaming
    // engine).
    let (mat_digest, mat_secs) =
        materializing_run(&stimuli, MATERIALIZING_CAP, seed.derive("run"));
    let materializing_pps = MATERIALIZING_CAP as f64 / mat_secs;
    let speedup = streaming_pps / materializing_pps;
    println!(
        "materializing n={MATERIALIZING_CAP}: {mat_secs:.2}s \
         ({materializing_pps:.0} participants/sec) -> streaming speedup {speedup:.1}x"
    );
    // Equivalence spot-check at the capped size too.
    let (mat_check, _) =
        flat_run(&stimuli, MATERIALIZING_CAP, seed.derive("run"), FULL_SHARD, 0);
    if mat_check.fingerprint() != mat_digest.fingerprint() {
        identical = false;
        eprintln!("DIVERGENCE: flat digest differs from materializing at n={MATERIALIZING_CAP}");
    }

    let peak_rss = peak_rss_bytes();
    let speedup_ok = speedup >= 10.0;
    if !speedup_ok {
        eprintln!("FAIL: streaming speedup {speedup:.1}x is below the 10x gate");
    }
    let flat_speedup_ok = flat_speedup_1t >= FLAT_SPEEDUP_FLOOR;
    if !flat_speedup_ok {
        eprintln!(
            "FAIL: flat single-thread speedup {flat_speedup_1t:.1}x is below the \
             {FLAT_SPEEDUP_FLOOR}x regression floor"
        );
    }
    let par_eff_ok = !par_eff_gated || parallel_efficiency >= PARALLEL_EFFICIENCY_FLOOR;
    if !par_eff_ok {
        eprintln!(
            "FAIL: parallel efficiency {parallel_efficiency:.2} at {auto_threads} threads \
             is below the {PARALLEL_EFFICIENCY_FLOOR} floor ({hw_parallelism} hardware \
             threads available)"
        );
    }

    let env = eyeorg_bench::env_metadata_json();
    let json = format!(
        "{{\n  \"participants\": {FULL_PARTICIPANTS},\n  \"stimuli\": {FULL_SITES},\n  \
         \"shard_size\": {FULL_SHARD},\n  \"alt_shard_size\": {ALT_SHARD},\n  \
         {env},\n  \
         \"streaming_secs\": {full_secs:.6},\n  \
         \"streaming_participants_per_sec\": {streaming_pps:.1},\n  \
         \"flat_secs\": {flat_secs:.6},\n  \
         \"flat_participants_per_sec\": {flat_pps:.1},\n  \
         \"alt_shard_secs\": {alt_secs:.6},\n  \
         \"sweep_participants\": {SWEEP_PARTICIPANTS},\n  \
         \"streaming_1thread_participants_per_sec\": {stream_1t_pps:.1},\n  \
         \"flat_1thread_participants_per_sec\": {flat_1t_pps:.1},\n  \
         \"flat_2thread_participants_per_sec\": {flat_2t_pps:.1},\n  \
         \"flat_auto_participants_per_sec\": {flat_auto_pps:.1},\n  \
         \"flat_speedup_1thread\": {flat_speedup_1t:.2},\n  \
         \"flat_speedup_floor\": {FLAT_SPEEDUP_FLOOR},\n  \
         \"flat_speedup_roadmap_target\": {FLAT_SPEEDUP_TARGET},\n  \
         \"parallel_efficiency\": {parallel_efficiency:.3},\n  \
         \"parallel_efficiency_floor\": {PARALLEL_EFFICIENCY_FLOOR},\n  \
         \"hw_parallelism\": {hw_parallelism},\n  \
         \"parallel_efficiency_gated\": {par_eff_gated},\n  \
         \"parallel_efficiency_ok\": {par_eff_ok},\n  \
         \"materializing_participants\": {MATERIALIZING_CAP},\n  \
         \"materializing_secs\": {mat_secs:.6},\n  \
         \"materializing_participants_per_sec\": {materializing_pps:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"digest_retained_bytes\": {full_retained},\n  \
         \"digest_retained_bytes_at_{BOUND_PROBE_PARTICIPANTS}\": {probe_retained},\n  \
         \"retained_bytes_bounded\": {bounded},\n  \
         \"peak_rss_bytes\": {peak_rss},\n  \
         \"speedup_gate_10x\": {speedup_ok},\n  \
         \"flat_speedup_floor_met\": {flat_speedup_ok},\n  \
         \"identical_across_engines_shards_threads\": {identical}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote results/BENCH_scale.json");

    if !identical || !bounded || !speedup_ok || !flat_speedup_ok || !par_eff_ok {
        eprintln!("FAIL: scale gates not met");
        std::process::exit(1);
    }
}

fn main() {
    eyeorg_obs::enable();
    let mut smoke_mode = false;
    let mut fp_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--fingerprint-out" => {
                fp_out = Some(args.next().expect("--fingerprint-out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if smoke_mode {
        smoke(fp_out);
    } else {
        full();
    }
}
