//! Figure 1: the response-exploration view.
//!
//! Eyeorg's visualisation tool shows a video's `UserPerceivedPLT`
//! responses on a timeline next to the video; Fig. 1(b)'s example is a
//! site where one response mode precedes the ads and one follows them.
//! The harness reproduces both panels: a typical site and (when the
//! classifier finds one) a multimodal ad-driven site with the onload and
//! LastVisualChange markers for orientation.

use eyeorg_core::analysis::uplt_samples;
use eyeorg_core::campaign::TimelineCampaign;
use eyeorg_core::viz::response_timeline;
use eyeorg_metrics::compute_metrics;
use eyeorg_stats::{classify_shape, DistributionShape, ShapeParams};

use crate::campaigns::Filtered;

/// Build the Fig. 1 report.
pub fn run(fin: &Filtered<TimelineCampaign>) -> String {
    let samples = uplt_samples(&fin.campaign, &fin.report, None);
    let shapes: Vec<Option<DistributionShape>> = samples
        .iter()
        .map(|s| classify_shape(s, &ShapeParams::default()))
        .collect();

    let render = |vi: usize| -> String {
        let video = &fin.campaign.videos[vi];
        let m = compute_metrics(video);
        let max = video.duration().as_secs_f64();
        let mut markers: Vec<(char, f64, &str)> = Vec::new();
        let onload = m.onload.map(|t| t.as_secs_f64());
        let lvc = m.last_visual_change.map(|t| t.as_secs_f64());
        if let Some(o) = onload {
            markers.push(('O', o, "onload"));
        }
        if let Some(l) = lvc {
            markers.push(('L', l, "last visual change"));
        }
        let mut s = format!("site: {}\n", fin.campaign.stimuli_names[vi]);
        s.push_str(&response_timeline(&samples[vi], max, 64, &markers));
        s
    };

    let mut out = String::new();
    out.push_str("=== Figure 1(a): a typical response timeline ===\n");
    // The first video with a healthy response count.
    if let Some(vi) = (0..samples.len()).find(|&i| samples[i].len() >= 10) {
        out.push_str(&render(vi));
    }
    out.push_str("\n=== Figure 1(b): multiple modes (ads load late) ===\n");
    match shapes.iter().position(|s| *s == Some(DistributionShape::Multimodal)) {
        Some(vi) => out.push_str(&render(vi)),
        None => out.push_str("(no multimodal video at this scale)\n"),
    }
    out
}
