//! HTTP/1.1 connection-pool building blocks.
//!
//! An HTTP/1.1 browser opens up to six parallel TCP connections per
//! origin and runs one request–response exchange at a time on each (real
//! browsers ship with pipelining disabled, as did the Chrome webpeg
//! recorded). The consequences this module exists to reproduce:
//!
//! * **head-of-line blocking at the connection pool** — the seventh
//!   request waits for a connection to free up;
//! * **per-connection slow start** — six short flows each ramp their own
//!   congestion window (slower per-flow, but six parallel ramps);
//! * **raw headers** — every request repeats its full cookie/UA baggage.
//!
//! [`H1Conn`] is the per-connection bookkeeping: which response is in
//! flight and where its header/body boundaries fall in the connection's
//! cumulative downlink byte stream. It is a pure state machine —
//! `eyeorg_http::engine` performs the actual sends.

use eyeorg_net::{ConnId, SimTime};

use crate::request::{Priority, RequestId};

/// Attribution events produced as downlink bytes arrive on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum H1Delivery {
    /// The in-flight response's headers finished arriving.
    Headers(RequestId),
    /// Body progress: cumulative body bytes received for the response.
    Body(RequestId, u64),
    /// The response completed; the connection is free again.
    Done(RequestId),
}

/// The response currently being received on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrentResponse {
    /// Which request this response answers.
    pub id: RequestId,
    /// Absolute downlink-stream offset at which headers end.
    pub header_end: u64,
    /// Absolute offset at which the body (and response) ends.
    pub body_end: u64,
    headers_emitted: bool,
}

/// One HTTP/1.1 connection in an origin's pool.
#[derive(Debug)]
pub struct H1Conn {
    /// Transport connection backing this slot.
    pub conn: ConnId,
    /// Whether the handshake has completed.
    pub established: bool,
    /// Request whose *request bytes* are on the wire / awaiting response.
    /// `Some` from assignment until the response completes.
    pub in_service: Option<RequestId>,
    /// Cumulative request bytes sent up this connection (attribution
    /// mark: when the server has received this many, the current request
    /// has fully arrived).
    pub up_mark: u64,
    /// Response currently streaming down, with its stream boundaries.
    pub current: Option<CurrentResponse>,
    /// Cumulative downlink bytes already attributed.
    pub down_attributed: u64,
    /// Total downlink bytes expected once the current response is fully
    /// written (grows as responses are scheduled).
    pub down_scheduled: u64,
}

impl H1Conn {
    /// A new, not-yet-established connection slot.
    pub fn new(conn: ConnId) -> H1Conn {
        H1Conn {
            conn,
            established: false,
            in_service: None,
            up_mark: 0,
            current: None,
            down_attributed: 0,
            down_scheduled: 0,
        }
    }

    /// Whether a new request may be assigned (established or not — a
    /// request may be queued on a connecting slot; it is sent on
    /// establishment).
    pub fn idle(&self) -> bool {
        self.in_service.is_none()
    }

    /// Begin serving `id`: the caller sends `request_bytes` up the wire.
    ///
    /// # Panics
    /// Panics if the connection is already serving a request — HTTP/1.1
    /// without pipelining never has two in flight.
    pub fn assign(&mut self, id: RequestId, request_bytes: u64) {
        assert!(self.in_service.is_none(), "H1 connection already busy");
        self.in_service = Some(id);
        self.up_mark += request_bytes;
    }

    /// The server has `total` cumulative request bytes; returns the
    /// request that just fully arrived, if it is the one in service.
    pub fn request_arrived(&self, total: u64) -> Option<RequestId> {
        if total >= self.up_mark {
            self.in_service.filter(|_| self.current.is_none())
        } else {
            None
        }
    }

    /// The server begins writing the response for the request in service:
    /// record its boundaries in the downlink stream.
    ///
    /// # Panics
    /// Panics if no request is in service or a response is already in
    /// flight.
    pub fn response_scheduled(&mut self, header_bytes: u64, body_bytes: u64) -> RequestId {
        // lint:allow(D4): documented panic: calling without a request in service is a protocol-logic error
        let id = self.in_service.expect("response without a request in service");
        assert!(self.current.is_none(), "response already in flight");
        let header_end = self.down_scheduled + header_bytes;
        let body_end = header_end + body_bytes;
        self.down_scheduled = body_end;
        self.current =
            Some(CurrentResponse { id, header_end, body_end, headers_emitted: false });
        id
    }

    /// Attribute newly delivered downlink bytes (`total` is cumulative for
    /// the connection) to the in-flight response.
    pub fn on_delivered(&mut self, total: u64) -> Vec<H1Delivery> {
        let mut out = Vec::new();
        if total <= self.down_attributed {
            return out;
        }
        self.down_attributed = total;
        let Some(cur) = self.current.as_mut() else { return out };
        if !cur.headers_emitted && total >= cur.header_end {
            cur.headers_emitted = true;
            out.push(H1Delivery::Headers(cur.id));
        }
        if cur.headers_emitted && total > cur.header_end {
            let body_so_far = total.min(cur.body_end) - cur.header_end;
            if total >= cur.body_end {
                let id = cur.id;
                if cur.body_end > cur.header_end {
                    out.push(H1Delivery::Body(id, body_so_far));
                }
                out.push(H1Delivery::Done(id));
                self.current = None;
                self.in_service = None;
            } else {
                out.push(H1Delivery::Body(cur.id, body_so_far));
            }
        } else if cur.headers_emitted && total >= cur.body_end {
            // Zero-length body: Done immediately after headers.
            let id = cur.id;
            out.push(H1Delivery::Done(id));
            self.current = None;
            self.in_service = None;
        }
        out
    }
}

/// A queued request waiting for a free connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The waiting request.
    pub id: RequestId,
    /// When it was submitted (assignment may not precede this).
    pub submitted: SimTime,
    /// Its priority (higher priorities win free connections).
    pub priority: Priority,
}

/// An origin's HTTP/1.1 connection pool and pending-request queue.
#[derive(Debug, Default)]
pub struct H1Origin {
    /// Connection slots (at most the configured pool size).
    pub conns: Vec<H1Conn>,
    /// Requests awaiting a connection.
    pub queue: Vec<QueuedRequest>,
}

impl H1Origin {
    /// A fresh pool with no connections.
    pub fn new() -> H1Origin {
        H1Origin::default()
    }

    /// Pop the best assignable queued request at time `now`: highest
    /// priority first, FIFO within a priority, and never a request
    /// submitted in the future.
    pub fn pop_assignable(&mut self, now: SimTime) -> Option<QueuedRequest> {
        let mut best: Option<usize> = None;
        for (i, q) in self.queue.iter().enumerate() {
            if q.submitted > now {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if q.priority < self.queue[b].priority {
                        best = Some(i);
                    }
                }
            }
        }
        best.map(|i| self.queue.remove(i))
    }

    /// Index of an idle established connection, preferring lower indices
    /// (deterministic reuse order).
    pub fn idle_established(&self) -> Option<usize> {
        self.conns.iter().position(|c| c.established && c.idle())
    }

    /// Index of an idle connecting slot (a request can wait on it).
    pub fn idle_connecting(&self) -> Option<usize> {
        self.conns.iter().position(|c| !c.established && c.idle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> H1Conn {
        let mut c = H1Conn::new(ConnId(0));
        c.established = true;
        c
    }

    #[test]
    fn assign_and_request_arrival() {
        let mut c = conn();
        c.assign(RequestId(1), 500);
        assert!(!c.idle());
        assert_eq!(c.request_arrived(499), None);
        assert_eq!(c.request_arrived(500), Some(RequestId(1)));
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_assign_panics() {
        let mut c = conn();
        c.assign(RequestId(1), 100);
        c.assign(RequestId(2), 100);
    }

    #[test]
    fn delivery_attribution_full_cycle() {
        let mut c = conn();
        c.assign(RequestId(1), 100);
        c.response_scheduled(200, 1000);
        // Headers incomplete: nothing.
        assert!(c.on_delivered(150).is_empty());
        // Headers complete at 200.
        assert_eq!(c.on_delivered(200), vec![H1Delivery::Headers(RequestId(1))]);
        // Partial body.
        assert_eq!(c.on_delivered(700), vec![H1Delivery::Body(RequestId(1), 500)]);
        // Completion.
        assert_eq!(
            c.on_delivered(1200),
            vec![H1Delivery::Body(RequestId(1), 1000), H1Delivery::Done(RequestId(1))]
        );
        assert!(c.idle());
    }

    #[test]
    fn headers_and_completion_in_one_burst() {
        let mut c = conn();
        c.assign(RequestId(3), 100);
        c.response_scheduled(200, 300);
        let evs = c.on_delivered(500);
        assert_eq!(
            evs,
            vec![
                H1Delivery::Headers(RequestId(3)),
                H1Delivery::Body(RequestId(3), 300),
                H1Delivery::Done(RequestId(3)),
            ]
        );
    }

    #[test]
    fn zero_length_body() {
        let mut c = conn();
        c.assign(RequestId(4), 100);
        c.response_scheduled(150, 0);
        let evs = c.on_delivered(150);
        assert_eq!(evs, vec![H1Delivery::Headers(RequestId(4)), H1Delivery::Done(RequestId(4))]);
    }

    #[test]
    fn keep_alive_reuses_stream_offsets() {
        let mut c = conn();
        c.assign(RequestId(1), 100);
        c.response_scheduled(100, 100);
        c.on_delivered(200);
        assert!(c.idle());
        // Second exchange continues the cumulative stream.
        c.assign(RequestId(2), 100);
        assert_eq!(c.request_arrived(200), Some(RequestId(2)));
        c.response_scheduled(50, 50);
        let evs = c.on_delivered(300);
        assert!(evs.contains(&H1Delivery::Done(RequestId(2))));
    }

    #[test]
    fn duplicate_delivery_ignored() {
        let mut c = conn();
        c.assign(RequestId(1), 100);
        c.response_scheduled(100, 100);
        c.on_delivered(150);
        assert!(c.on_delivered(150).is_empty());
        assert!(c.on_delivered(120).is_empty());
    }

    #[test]
    fn queue_priority_and_fifo() {
        let mut o = H1Origin::new();
        let t = SimTime::from_millis(10);
        o.queue.push(QueuedRequest { id: RequestId(1), submitted: t, priority: Priority::Low });
        o.queue.push(QueuedRequest { id: RequestId(2), submitted: t, priority: Priority::High });
        o.queue.push(QueuedRequest { id: RequestId(3), submitted: t, priority: Priority::High });
        let first = o.pop_assignable(t).unwrap();
        assert_eq!(first.id, RequestId(2), "higher priority wins");
        let second = o.pop_assignable(t).unwrap();
        assert_eq!(second.id, RequestId(3), "FIFO within priority");
        assert_eq!(o.pop_assignable(t).unwrap().id, RequestId(1));
        assert!(o.pop_assignable(t).is_none());
    }

    #[test]
    fn future_submissions_not_assignable() {
        let mut o = H1Origin::new();
        o.queue.push(QueuedRequest {
            id: RequestId(1),
            submitted: SimTime::from_millis(100),
            priority: Priority::High,
        });
        assert!(o.pop_assignable(SimTime::from_millis(50)).is_none());
        assert!(o.pop_assignable(SimTime::from_millis(100)).is_some());
    }

    #[test]
    fn idle_slot_queries() {
        let mut o = H1Origin::new();
        o.conns.push(H1Conn::new(ConnId(0)));
        assert_eq!(o.idle_established(), None);
        assert_eq!(o.idle_connecting(), Some(0));
        o.conns[0].established = true;
        assert_eq!(o.idle_established(), Some(0));
        o.conns[0].assign(RequestId(1), 10);
        assert_eq!(o.idle_established(), None);
    }
}
