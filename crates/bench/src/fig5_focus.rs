//! Figure 5: out-of-focus time, conditioned on video load time L.
//!
//! Paper findings: ~10 % more distracted participants when the video
//! takes up to 100 s to load than when it arrives within 2 s; A/B
//! participants (who can play immediately) are about as distracted as
//! fast-loading timeline participants; trusted timeline participants are
//! barely distracted at all.

use eyeorg_core::analysis::{ab_behavior_points, behavior_points, BehaviorPoint};
use eyeorg_stats::Ecdf;

use crate::campaigns::ValidationSet;
use crate::series_csv;

fn focus_series(points: &[BehaviorPoint], l_max: f64) -> (f64, Vec<f64>) {
    let eligible: Vec<&BehaviorPoint> =
        points.iter().filter(|p| p.max_video_load_secs <= l_max).collect();
    let distracted: Vec<f64> = eligible
        .iter()
        .filter(|p| p.out_of_focus_secs > 0.0)
        .map(|p| p.out_of_focus_secs)
        .collect();
    let frac_distracted = if eligible.is_empty() {
        0.0
    } else {
        distracted.len() as f64 / eligible.len() as f64
    };
    (frac_distracted, distracted)
}

/// Build the Fig. 5 report.
pub fn run(v: &ValidationSet) -> String {
    let tl_paid = behavior_points(&v.tl_paid.campaign);
    let tl_trusted = behavior_points(&v.tl_trusted.campaign);
    let ab_paid = ab_behavior_points(&v.ab_paid.campaign);

    let mut out = String::new();
    out.push_str("=== Figure 5: out-of-focus time by video load time L ===\n");
    out.push_str("series                      distracted  median-oof(s)\n");
    for (label, points, l) in [
        ("timeline paid, L<=2s", &tl_paid, 2.0),
        ("timeline paid, L<=10s", &tl_paid, 10.0),
        ("timeline paid, L<=100s", &tl_paid, 100.0),
        ("A/B paid", &ab_paid, f64::INFINITY),
        ("timeline trusted", &tl_trusted, f64::INFINITY),
    ] {
        let (frac, oof) = focus_series(points, l);
        let median = eyeorg_stats::percentile(&oof, 50.0).unwrap_or(0.0);
        out.push_str(&format!("{label:<27} {:>6.1}%      {median:>6.1}\n", frac * 100.0));
    }
    // The paper's headline comparison: distraction grows with L.
    let (f2, _) = focus_series(&tl_paid, 2.0);
    let (f100, _) = focus_series(&tl_paid, 100.0);
    out.push_str(&format!(
        "\ndistraction growth L<=2s -> L<=100s: {:+.1} percentage points (paper: ~ +10)\n",
        (f100 - f2) * 100.0
    ));
    out
}

/// CSV artefact: CDF of out-of-focus seconds for each series.
pub fn csv(v: &ValidationSet) -> String {
    let tl_paid = behavior_points(&v.tl_paid.campaign);
    let ab_paid = ab_behavior_points(&v.ab_paid.campaign);
    let mut out = String::new();
    for (label, points, l) in [
        ("tl_paid_l2", &tl_paid, 2.0),
        ("tl_paid_l10", &tl_paid, 10.0),
        ("tl_paid_l100", &tl_paid, 100.0),
        ("ab_paid", &ab_paid, f64::INFINITY),
    ] {
        let (_, oof) = focus_series(points, l);
        if let Some(e) = Ecdf::new(&oof) {
            out.push_str(&series_csv(&format!("oof_{label},cdf"), &e.points()));
        }
    }
    out
}
