//! Campaign digests: bounded-memory summaries of a campaign's results.
//!
//! A digest is everything the analysis/report layer reads from a
//! campaign, folded into the mergeable accumulators of
//! `eyeorg_stats::stream` instead of retained rows: per-stimulus
//! `UserPerceivedPLT` moments + fixed-bin histogram + quantile sketch,
//! behaviour moments over every admitted participant, filter/control
//! tallies, and the recruitment economics. Two construction paths exist
//! and are pinned byte-identical by the `streaming_equivalence` tests:
//!
//! * [`digest_timeline`] / [`digest_ab`] fold a **materialized**
//!   campaign plus its filter report — the small-campaign path, exact
//!   by construction;
//! * `stream::stream_timeline_campaign` / `stream::stream_ab_campaign`
//!   build the same digest shard by shard without ever materializing
//!   the rows.
//!
//! Equality of digests is compared through [`TimelineDigest::fingerprint`]
//! (the canonical `Debug` rendering of the full accumulator state), so
//! "equal" means bit-equal accumulators, not approximately equal
//! statistics.
//!
//! ## Merge errors
//!
//! Digest merges are only meaningful between accumulators built from
//! the same stimulus under the same [`DigestParams`]; anything else is
//! either a programming error (shard folds of one campaign always
//! agree by construction) or **untrusted input** (a checkpoint file
//! from disk, see `crate::checkpoint`). The fallible merges therefore
//! return [`MergeError`] — carrying both sides' identity/configuration
//! so a mismatch names exactly what disagreed — instead of panicking.
//! Internal shard-merge callers, whose inputs share one construction
//! site, discharge the `Result` with a documented `expect` waiver; the
//! checkpoint loader propagates it as a typed error to its caller.

use eyeorg_stats::{Histogram, Moments, QuantileSketch};

use crate::analysis::AbTally;
use crate::campaign::{AbCampaign, TimelineCampaign};
use crate::filtering::{FilterReport, FilterTally};

/// Accumulator sizing shared by both digest construction paths. The
/// parameters are part of the digest's identity: comparing digests
/// built with different params is meaningless (the sketch merge would
/// reject it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestParams {
    /// Bins of the per-stimulus UPLT histogram (over `[0, duration]`).
    pub hist_bins: usize,
    /// Bins of the quantile sketch once spilled.
    pub sketch_bins: usize,
    /// Observations per stimulus below which the sketch stays exact
    /// (small campaigns keep today's figure outputs unchanged).
    pub exact_cap: usize,
}

impl Default for DigestParams {
    fn default() -> Self {
        DigestParams { hist_bins: 64, sketch_bins: 512, exact_cap: 2048 }
    }
}

/// One side's accumulator configuration, as reported in a
/// [`MergeError`]: the value range, the bin count, and (for sketches)
/// the exact-mode cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinConfig {
    /// Range start.
    pub lo: f64,
    /// Range end.
    pub hi: f64,
    /// Bin count.
    pub bins: usize,
    /// Exact-mode cap (`None` for histograms).
    pub exact_cap: Option<usize>,
}

impl BinConfig {
    fn of_hist(h: &Histogram) -> BinConfig {
        BinConfig { lo: h.lo(), hi: h.hi(), bins: h.counts().len(), exact_cap: None }
    }

    fn of_sketch(s: &QuantileSketch) -> BinConfig {
        let (lo, hi) = s.range();
        BinConfig { lo, hi, bins: s.bins(), exact_cap: Some(s.exact_cap()) }
    }

    /// Bit-exact equality — the same comparison the accumulator merges
    /// use internally (`to_bits`), so this pre-check accepts exactly
    /// the pairs those merges will (value equality would wrongly admit
    /// `-0.0` vs `0.0`).
    fn bits_eq(&self, other: &BinConfig) -> bool {
        self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.bins == other.bins
            && self.exact_cap == other.exact_cap
    }
}

/// Why two digests refused to merge. Reachable from untrusted
/// checkpoint bytes, so every variant names the offending
/// configuration instead of panicking (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The two sides accumulate different stimuli.
    StimulusName {
        /// Receiving side's stimulus name.
        left: String,
        /// Incoming side's stimulus name.
        right: String,
    },
    /// The two sides carry different numbers of stimuli.
    StimulusCount {
        /// Receiving side's stimulus count.
        left: usize,
        /// Incoming side's stimulus count.
        right: usize,
    },
    /// The histograms were built with different binning configurations.
    HistogramConfig {
        /// Stimulus whose histograms disagreed.
        stimulus: String,
        /// Receiving side's configuration.
        left: BinConfig,
        /// Incoming side's configuration.
        right: BinConfig,
    },
    /// The quantile sketches were built with different construction
    /// parameters.
    SketchConfig {
        /// Stimulus whose sketches disagreed.
        stimulus: String,
        /// Receiving side's configuration.
        left: BinConfig,
        /// Incoming side's configuration.
        right: BinConfig,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::StimulusName { left, right } => {
                write!(f, "digest merge across stimuli: {left:?} vs {right:?}")
            }
            MergeError::StimulusCount { left, right } => {
                write!(f, "digest merge across stimulus sets: {left} vs {right} stimuli")
            }
            MergeError::HistogramConfig { stimulus, left, right } => {
                write!(f, "histogram config mismatch on {stimulus:?}: {left:?} vs {right:?}")
            }
            MergeError::SketchConfig { stimulus, left, right } => {
                write!(f, "sketch config mismatch on {stimulus:?}: {left:?} vs {right:?}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Per-stimulus UPLT accumulators (kept participants only).
#[derive(Debug, Clone, PartialEq)]
pub struct StimulusDigest {
    /// Stimulus name.
    pub name: String,
    /// Moments of the submitted `UserPerceivedPLT` (seconds).
    pub uplt: Moments,
    /// Fixed-bin response histogram over `[0, video duration]`.
    pub hist: Histogram,
    /// Quantile sketch over the same range (exact below the cap).
    pub sketch: QuantileSketch,
}

/// A positive, finite value span for a stimulus's accumulators; videos
/// always have positive duration, but a degenerate capture must not be
/// able to panic the digest.
fn value_span(duration_secs: f64) -> f64 {
    if duration_secs.is_finite() && duration_secs > 0.0 {
        duration_secs
    } else {
        1.0
    }
}

fn fixed_hist(hi: f64, bins: usize) -> Histogram {
    match Histogram::empty(0.0, value_span(hi), bins.max(1)) {
        Some(h) => h,
        // Unreachable by construction (positive finite span, ≥1 bin);
        // the unit fallback keeps this total without panicking.
        None => fixed_hist(1.0, 1),
    }
}

fn fixed_sketch(hi: f64, bins: usize, cap: usize) -> QuantileSketch {
    match QuantileSketch::new(0.0, value_span(hi), bins.max(1), cap) {
        Some(s) => s,
        None => fixed_sketch(1.0, 1, cap),
    }
}

impl StimulusDigest {
    /// Empty accumulators for one stimulus of the given duration.
    pub fn new(name: &str, duration_secs: f64, params: &DigestParams) -> StimulusDigest {
        StimulusDigest {
            name: name.to_owned(),
            uplt: Moments::new(),
            hist: fixed_hist(duration_secs, params.hist_bins),
            sketch: fixed_sketch(duration_secs, params.sketch_bins, params.exact_cap),
        }
    }

    /// Fold one kept response (submitted UPLT, seconds).
    pub fn push(&mut self, uplt_secs: f64) {
        self.uplt.push(uplt_secs);
        self.hist.record(uplt_secs);
        self.sketch.push(uplt_secs);
    }

    /// Kept responses folded so far.
    pub fn retained(&self) -> u64 {
        self.sketch.count()
    }

    /// Fold another shard's accumulators for the *same* stimulus in.
    ///
    /// Errors (leaving the moments untouched too — the checks run
    /// before any state changes) when the stimulus names or the
    /// histogram/sketch construction parameters disagree; see
    /// [`MergeError`] and the module docs for who may `expect` this.
    pub fn merge(&mut self, other: &StimulusDigest) -> Result<(), MergeError> {
        if self.name != other.name {
            return Err(MergeError::StimulusName {
                left: self.name.clone(),
                right: other.name.clone(),
            });
        }
        // Validate both fallible merges up front so a failed merge
        // never leaves a half-merged digest behind.
        if !BinConfig::of_hist(&self.hist).bits_eq(&BinConfig::of_hist(&other.hist)) {
            return Err(MergeError::HistogramConfig {
                stimulus: self.name.clone(),
                left: BinConfig::of_hist(&self.hist),
                right: BinConfig::of_hist(&other.hist),
            });
        }
        if !BinConfig::of_sketch(&self.sketch).bits_eq(&BinConfig::of_sketch(&other.sketch)) {
            return Err(MergeError::SketchConfig {
                stimulus: self.name.clone(),
                left: BinConfig::of_sketch(&self.sketch),
                right: BinConfig::of_sketch(&other.sketch),
            });
        }
        self.uplt.merge(&other.uplt);
        // `bits_eq` above is the exact comparison these merges gate on,
        // so a refusal here is impossible; the asserts are a belt over
        // the `#[must_use]` bools, not a reachable panic path.
        // lint:allow(D7): bits_eq above makes a merge refusal unreachable
        assert!(self.hist.merge(&other.hist), "histogram merge after equal-config check");
        // lint:allow(D7): see above - merge cannot refuse after bits_eq
        assert!(self.sketch.merge(&other.sketch), "sketch merge after equal-config check");
        Ok(())
    }

    /// Bytes retained by this stimulus's accumulators (the scale
    /// bench's peak-RSS proxy). Bounded by the construction parameters,
    /// never by the response count.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<StimulusDigest>()
            + self.name.capacity()
            + std::mem::size_of_val(self.hist.counts())
            + self.sketch.retained_bytes()
    }

    /// Mean UPLT within a percentile band of this stimulus's responses
    /// (`None` band = plain mean). Exact — identical to
    /// `analysis::mean_uplt` — while the sketch holds the sample;
    /// beyond the cap the band edges come from the sketch (±1 bin
    /// width) and the mean is a bin-mass-weighted approximation.
    pub fn banded_mean(&self, band: Option<(f64, f64)>) -> Option<f64> {
        let Some((lo_pct, hi_pct)) = band else { return self.uplt.mean() };
        if let Some(values) = self.sketch.exact_values() {
            let kept = eyeorg_stats::percentile_band(values, lo_pct, hi_pct);
            if kept.is_empty() {
                return None;
            }
            let mut m = Moments::new();
            for v in kept {
                m.push(v);
            }
            return m.mean();
        }
        let lo = self.sketch.quantile(lo_pct)?;
        let hi = self.sketch.quantile(hi_pct)?;
        let (mut mass, mut weighted) = (0.0f64, 0.0f64);
        let width = self.hist.bin_width();
        for (i, &c) in self.hist.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let center = self.hist.bin_center(i);
            if center + width / 2.0 < lo || center - width / 2.0 > hi {
                continue;
            }
            mass += f64::from(c);
            weighted += f64::from(c) * center;
        }
        (mass > 0.0).then(|| weighted / mass)
    }
}

/// Behaviour moments over every admitted participant (the unfiltered
/// view §4.2 analyses — the streaming counterpart of
/// `analysis::behavior_points`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BehaviorDigest {
    /// Minutes on site (videos + instructions).
    pub minutes_on_site: Moments,
    /// Total play/pause/seek actions.
    pub actions: Moments,
    /// Total seconds out of focus.
    pub out_of_focus_secs: Moments,
    /// Largest single-video load time, seconds.
    pub max_video_load_secs: Moments,
}

impl BehaviorDigest {
    /// Fold one participant's aggregates in.
    pub fn push(&mut self, point: &crate::analysis::BehaviorPoint) {
        self.minutes_on_site.push(point.minutes_on_site);
        self.actions.push(f64::from(point.actions));
        self.out_of_focus_secs.push(point.out_of_focus_secs);
        self.max_video_load_secs.push(point.max_video_load_secs);
    }

    /// Fold another shard's moments in.
    pub fn merge(&mut self, other: &BehaviorDigest) {
        self.minutes_on_site.merge(&other.minutes_on_site);
        self.actions.merge(&other.actions);
        self.out_of_focus_secs.merge(&other.out_of_focus_secs);
        self.max_video_load_secs.merge(&other.max_video_load_secs);
    }
}

/// Control-question outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlTally {
    /// Controls answered correctly.
    pub passed: u64,
    /// Controls failed.
    pub failed: u64,
}

impl ControlTally {
    /// Fold one outcome in.
    pub fn record(&mut self, passed: bool) {
        if passed {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Fold another shard's tally in.
    pub fn merge(&mut self, other: &ControlTally) {
        self.passed += other.passed;
        self.failed += other.failed;
    }
}

/// Bounded-memory summary of a timeline campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDigest {
    /// Per-stimulus accumulators, in stimulus order.
    pub stimuli: Vec<StimulusDigest>,
    /// Participants the recruitment drive targeted.
    pub recruited: u64,
    /// Participants past the humanness gate.
    pub admitted: u64,
    /// Participants turned away at the gate.
    pub rejected: u64,
    /// Recruitment economics.
    pub recruitment_cost_usd: f64,
    /// Wall time to hit the recruitment target, seconds.
    pub recruitment_duration_secs: f64,
    /// Responses collected (non-skipped showings, kept or not).
    pub responses_collected: u64,
    /// Showings the participant skipped.
    pub responses_skipped: u64,
    /// Behaviour moments over every admitted participant.
    pub behavior: BehaviorDigest,
    /// §4.3 filter outcomes.
    pub filters: FilterTally,
    /// Control-question outcomes.
    pub controls: ControlTally,
}

impl TimelineDigest {
    /// Canonical rendering of the full accumulator state. Equal strings
    /// ⇔ bit-equal digests; this is what the equivalence tests and the
    /// scale bench's divergence gate compare.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// Crowd UPLT per stimulus (optionally band-filtered), the Fig. 7
    /// quantity. See [`StimulusDigest::banded_mean`] for exactness.
    pub fn mean_uplt(&self, band: Option<(f64, f64)>) -> Vec<Option<f64>> {
        self.stimuli.iter().map(|s| s.banded_mean(band)).collect()
    }

    /// Bytes retained by the whole digest — what one shard (and the
    /// final merge) holds instead of the materialized row set.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<TimelineDigest>()
            + self.stimuli.iter().map(StimulusDigest::retained_bytes).sum::<usize>()
    }
}

/// Bounded-memory summary of an A/B campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AbDigest {
    /// Per-stimulus vote tallies (kept participants only) plus
    /// presentation counts over all admitted participants.
    pub stimuli: Vec<AbStimulusDigest>,
    /// Participants the recruitment drive targeted.
    pub recruited: u64,
    /// Participants past the humanness gate.
    pub admitted: u64,
    /// Participants turned away at the gate.
    pub rejected: u64,
    /// Recruitment economics.
    pub recruitment_cost_usd: f64,
    /// Wall time to hit the recruitment target, seconds.
    pub recruitment_duration_secs: f64,
    /// Votes cast (non-skipped showings, kept or not).
    pub votes_cast: u64,
    /// Showings skipped.
    pub votes_skipped: u64,
    /// Behaviour moments over every admitted participant.
    pub behavior: BehaviorDigest,
    /// §4.3 filter outcomes.
    pub filters: FilterTally,
    /// Control-question outcomes.
    pub controls: ControlTally,
}

/// Per-stimulus A/B accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbStimulusDigest {
    /// Stimulus name.
    pub name: String,
    /// Vote tally over kept participants.
    pub tally: AbTally,
    /// Showings to admitted participants (kept or not).
    pub shows: u64,
    /// Of those, showings with A on the left.
    pub a_left_shows: u64,
}

impl AbStimulusDigest {
    /// Empty accumulators for one stimulus.
    pub fn new(name: &str) -> AbStimulusDigest {
        AbStimulusDigest { name: name.to_owned(), tally: AbTally::default(), shows: 0, a_left_shows: 0 }
    }

    /// Fold another shard's accumulators for the same stimulus in.
    ///
    /// Errors when the stimulus names disagree; see [`MergeError`] and
    /// the module docs for who may `expect` this.
    pub fn merge(&mut self, other: &AbStimulusDigest) -> Result<(), MergeError> {
        if self.name != other.name {
            return Err(MergeError::StimulusName {
                left: self.name.clone(),
                right: other.name.clone(),
            });
        }
        self.tally.merge(&other.tally);
        self.shows += other.shows;
        self.a_left_shows += other.a_left_shows;
        Ok(())
    }
}

impl AbDigest {
    /// Canonical rendering of the full accumulator state (see
    /// [`TimelineDigest::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// Vote tallies in stimulus order (the `analysis::ab_tallies`
    /// quantity).
    pub fn tallies(&self) -> Vec<AbTally> {
        self.stimuli.iter().map(|s| s.tally).collect()
    }
}

/// Fold a materialized timeline campaign (plus its filter report) into
/// a digest.
///
/// `recruited` is the original drive target (the campaign only retains
/// admitted participants). The caller must have produced `report` with
/// exactly one `filter_timeline` run over this campaign — the digest
/// does not re-run the filters, so the obs counter totals line up with
/// one streaming run of the same configuration.
pub fn digest_timeline(
    campaign: &TimelineCampaign,
    report: &FilterReport,
    recruited: usize,
    params: &DigestParams,
) -> TimelineDigest {
    let mut stimuli: Vec<StimulusDigest> = campaign
        .stimuli_names
        .iter()
        .zip(&campaign.videos)
        .map(|(name, video)| StimulusDigest::new(name, video.duration().as_secs_f64(), params))
        .collect();
    let mut collected = 0u64;
    let mut skipped = 0u64;
    for row in &campaign.rows {
        match row.response {
            Some(resp) => {
                collected += 1;
                if report.kept.contains(&row.participant) {
                    stimuli[row.stimulus].push(resp.submitted.as_secs_f64());
                }
            }
            None => skipped += 1,
        }
    }
    if eyeorg_obs::enabled() {
        // Mirror of `analysis::uplt_samples`: zero-adds still
        // materialise the label, so fully-filtered sites stay visible.
        for s in &stimuli {
            eyeorg_obs::metrics::CORE_RETAINED_PER_SITE.add(&s.name, s.retained());
        }
    }
    let mut behavior = BehaviorDigest::default();
    for point in crate::analysis::behavior_points(campaign) {
        behavior.push(&point);
    }
    let mut controls = ControlTally::default();
    for c in &campaign.controls {
        controls.record(c.passed);
    }
    TimelineDigest {
        stimuli,
        recruited: recruited as u64,
        admitted: campaign.participants.len() as u64,
        rejected: (recruited - campaign.participants.len()) as u64,
        recruitment_cost_usd: campaign.recruitment_cost_usd,
        recruitment_duration_secs: campaign.recruitment_duration_secs,
        responses_collected: collected,
        responses_skipped: skipped,
        behavior,
        filters: FilterTally::of_report(report),
        controls,
    }
}

/// Fold a materialized A/B campaign (plus its filter report) into a
/// digest. Same contract as [`digest_timeline`].
pub fn digest_ab(campaign: &AbCampaign, report: &FilterReport, recruited: usize) -> AbDigest {
    let mut stimuli: Vec<AbStimulusDigest> =
        campaign.stimuli_names.iter().map(|n| AbStimulusDigest::new(n)).collect();
    let mut cast = 0u64;
    let mut skipped = 0u64;
    for row in &campaign.rows {
        let s = &mut stimuli[row.stimulus];
        s.shows += 1;
        if row.a_left {
            s.a_left_shows += 1;
        }
        match row.verdict {
            Some(v) => {
                cast += 1;
                if report.kept.contains(&row.participant) {
                    s.tally.record(v);
                }
            }
            None => skipped += 1,
        }
    }
    let mut behavior = BehaviorDigest::default();
    for point in crate::analysis::ab_behavior_points(campaign) {
        behavior.push(&point);
    }
    let mut controls = ControlTally::default();
    for c in &campaign.controls {
        controls.record(c.passed);
    }
    AbDigest {
        stimuli,
        recruited: recruited as u64,
        admitted: campaign.participants.len() as u64,
        rejected: (recruited - campaign.participants.len()) as u64,
        recruitment_cost_usd: campaign.recruitment_cost_usd,
        recruitment_duration_secs: campaign.recruitment_duration_secs,
        votes_cast: cast,
        votes_skipped: skipped,
        behavior,
        filters: FilterTally::of_report(report),
        controls,
    }
}
