//! "Which demographics are more sensitive to PLT speedup?" — one of the
//! motivating questions Eyeorg's introduction poses (§3). This example
//! runs an H1-vs-H2 A/B campaign and slices the responses by self-
//! assessed technical ability and by gender.
//!
//! ```sh
//! cargo run --release --example demographics
//! ```

use eyeorg_browser::BrowserConfig;
use eyeorg_core::analysis::ab_demographics;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn main() {
    let seed = Seed(2024);
    let sites = alexa_like(seed, 8);
    let stimuli = protocol_ab_stimuli(
        &sites,
        &BrowserConfig::new().with_network(NetworkProfile::cable()),
        &CaptureConfig::default(),
        seed,
    );
    let campaign =
        run_ab_campaign(stimuli, &CrowdFlower, 240, &ExperimentConfig::default(), seed);
    let report = filter_ab(&campaign, &paper_pipeline());

    println!("slice      participants  votes  decided  majority-agreement");
    for s in ab_demographics(&campaign, &report) {
        println!(
            "{:<10} {:>12} {:>6} {:>7.0}% {:>18.0}%",
            s.label,
            s.participants,
            s.votes,
            s.decided_rate * 100.0,
            s.majority_agreement * 100.0,
        );
    }
    println!(
        "\nTechnically savvy participants decide more often (finer JNDs),\n\
         while gender slices behave alike — sensitivity is about expertise,\n\
         not demographics per se."
    );
}
