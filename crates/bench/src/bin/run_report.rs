//! Deterministic run-report harness.
//!
//! Runs a small end-to-end campaign — corpus → webpeg captures →
//! timeline + A/B campaigns → filtering → analysis — with the
//! observability layer enabled, then writes the aggregated
//! [`eyeorg_obs::RunReport`] to `results/RUN_report.json`.
//!
//! The counter section of the report is a pure function of the workload
//! and seeds: `scripts/verify.sh` runs this binary at `EYEORG_THREADS=1`,
//! `=2`, and unset and `cmp`s the counter fingerprints, which must be
//! byte-identical (wall-clock timings live in a separate section and are
//! excluded from the fingerprint).
//!
//! Flags:
//! * `--out PATH` — where to write the full report
//!   (default `results/RUN_report.json`);
//! * `--fingerprint-out PATH` — additionally write the deterministic
//!   counter fingerprint alone (compact JSON, one line).

use eyeorg_bench::campaigns::{capture_browser, protocol_capture_browser};
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{resolve_threads, Seed};
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const SITES: usize = 8;
const REPEATS: usize = 2;
const PARTICIPANTS: usize = 60;

fn main() {
    let mut out_path = String::from("results/RUN_report.json");
    let mut fp_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--fingerprint-out" => {
                fp_path = Some(args.next().expect("--fingerprint-out needs a path"));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    eyeorg_obs::enable();
    // 0 = auto: the EYEORG_THREADS override (or the hardware count)
    // decides whether the campaign engine runs sequential or parallel —
    // exactly the knob the determinism check exercises.
    let threads = resolve_threads(0);
    let seed = Seed(2016).derive("run-report");
    let capture = CaptureConfig { repeats: REPEATS, ..CaptureConfig::default() };

    let sites = eyeorg_obs::time_phase("report.corpus", || alexa_like(seed.derive("sites"), SITES));

    let tl_stimuli = eyeorg_obs::time_phase("report.capture_timeline", || {
        timeline_stimuli(&sites, &capture_browser(), &capture, seed.derive("tl-cap"))
    });
    let ab_stimuli = eyeorg_obs::time_phase("report.capture_ab", || {
        protocol_ab_stimuli(&sites, &protocol_capture_browser(), &capture, seed.derive("ab-cap"))
    });

    let cfg = ExperimentConfig::default();
    let tl = run_timeline_campaign(
        tl_stimuli,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg,
        seed.derive("tl-run"),
    );
    let ab = run_ab_campaign(ab_stimuli, &CrowdFlower, PARTICIPANTS, &cfg, seed.derive("ab-run"));

    let (tl_report, ab_report) = eyeorg_obs::time_phase("report.filtering", || {
        let pipeline = paper_pipeline();
        (filter_timeline(&tl, &pipeline), filter_ab(&ab, &pipeline))
    });
    eyeorg_obs::time_phase("report.analysis", || {
        let banded = uplt_samples(&tl, &tl_report, Some((25.0, 75.0)));
        let tallies = ab_tallies(&ab, &ab_report);
        // Consume the aggregates so the analysis stage cannot be
        // optimised away; the counts also serve as a smoke check.
        let retained: usize = banded.iter().map(Vec::len).sum();
        let votes: u32 = tallies.iter().map(AbTally::total).sum();
        assert!(retained > 0, "a healthy campaign retains responses");
        assert!(votes > 0, "a healthy campaign collects votes");
    });
    eyeorg_obs::time_phase("report.encode", || {
        // Encode one served video, as webpeg would before upload, so the
        // encoder counters are exercised end to end.
        let encoded = eyeorg_video::encode(&tl.videos[0]);
        assert!(!encoded.packets.is_empty());
    });

    let report = eyeorg_obs::snapshot("run-report", threads);
    std::fs::create_dir_all(
        std::path::Path::new(&out_path).parent().unwrap_or(std::path::Path::new(".")),
    )
    .expect("create output dir");
    std::fs::write(&out_path, report.to_json_pretty()).expect("write run report");
    println!("wrote {out_path} (threads={threads})");
    if let Some(fp) = fp_path {
        std::fs::write(&fp, report.counter_fingerprint()).expect("write fingerprint");
        println!("wrote {fp}");
    }
}
