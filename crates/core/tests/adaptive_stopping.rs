//! Adaptive early-stopping properties (DESIGN.md §3h).
//!
//! * `epsilon = 0, max_n = 0` (inactive) ⇒ the adaptive driver is
//!   byte-identical to the plain streaming engine for both backends,
//!   every shard size, thread count, and epoch size. (The matching
//!   counter-fingerprint check lives in `perf_adaptive --smoke`, which
//!   owns its process — the obs registry is global.)
//! * With an active rule, the decision sequence and the final digest
//!   are invariant under shard size, thread count, backend, epoch-vs-
//!   budget alignment, and the PR 4 chaos-seed exerciser.
//! * Decisions are monotone in `epsilon`, never fire before `min_n`,
//!   and always fire by `max_n`.

use std::sync::OnceLock;

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{set_chaos_seed, Seed};
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn capture() -> CaptureConfig {
    CaptureConfig { repeats: 2, ..CaptureConfig::default() }
}

fn tl_stimuli() -> &'static Vec<TimelineStimulus> {
    static STIMULI: OnceLock<Vec<TimelineStimulus>> = OnceLock::new();
    STIMULI.get_or_init(|| {
        let sites = alexa_like(Seed(951), 4);
        timeline_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(952))
    })
}

fn cfg(threads: usize) -> ExperimentConfig {
    ExperimentConfig { threads, ..ExperimentConfig::default() }
}

fn stream_cfg(shard_size: usize) -> StreamConfig {
    StreamConfig { shard_size, ..StreamConfig::default() }
}

fn inactive(epoch: usize) -> AdaptiveConfig {
    AdaptiveConfig { epoch, epsilon: 0.0, min_n: 256, max_n: 0 }
}

fn run_adaptive(
    n: usize,
    threads: usize,
    shard: usize,
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
) -> AdaptiveOutcome {
    adaptive_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        n,
        &cfg(threads),
        &paper_pipeline(),
        Seed(970),
        &stream_cfg(shard),
        ac,
        backend,
    )
}

#[test]
fn inactive_config_is_byte_identical_to_streaming() {
    let stimuli = tl_stimuli();
    for n in [7usize, 400] {
        let reference = stream_timeline_campaign(
            stimuli,
            &CrowdFlower,
            n,
            &cfg(0),
            &paper_pipeline(),
            Seed(970),
            &stream_cfg(16),
        )
        .fingerprint();
        for threads in [1usize, 2, 0] {
            for shard in [1usize, 16, 64] {
                // The epoch size must be invisible when no rule can fire
                // — including epochs that straddle shard boundaries.
                for epoch in [37usize, 256] {
                    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
                        let out =
                            run_adaptive(n, threads, shard, &inactive(epoch), backend);
                        assert_eq!(
                            out.digest.fingerprint(),
                            reference,
                            "n={n} threads={threads} shard={shard} epoch={epoch} {backend:?}"
                        );
                        assert_eq!(out.recruited, n as u64);
                        assert_eq!(out.pruned, 0);
                        assert_eq!(out.participants_saved(), 0);
                        assert!(out.decisions.is_empty());
                        assert!(out.stopped_at.iter().all(Option::is_none));
                    }
                }
            }
        }
    }
}

/// An epsilon that reliably fires on this 4-stimulus workload well
/// before a 1200-participant budget runs out (UPLT spreads are a few
/// seconds; half-widths cross 0.5 s after a few hundred kept responses).
fn active() -> AdaptiveConfig {
    AdaptiveConfig { epoch: 100, epsilon: 0.5, min_n: 50, max_n: 0 }
}

#[test]
fn decisions_and_digest_invariant_under_shards_threads_chaos_and_backend() {
    let n = 1200usize;
    let reference = run_adaptive(n, 1, 16, &active(), AdaptiveBackend::Streaming);
    assert!(
        !reference.decisions.is_empty(),
        "calibration: epsilon must fire on this workload"
    );
    let ref_decisions = reference.decision_fingerprint();
    let ref_digest = reference.digest.fingerprint();
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        for threads in [1usize, 2, 0] {
            for shard in [16usize, 64, n + 1] {
                for chaos in [0u64, 7, 23] {
                    set_chaos_seed(chaos);
                    let out = run_adaptive(n, threads, shard, &active(), backend);
                    set_chaos_seed(0);
                    assert_eq!(
                        out.decision_fingerprint(),
                        ref_decisions,
                        "{backend:?} threads={threads} shard={shard} chaos={chaos}"
                    );
                    assert_eq!(
                        out.digest.fingerprint(),
                        ref_digest,
                        "{backend:?} threads={threads} shard={shard} chaos={chaos}"
                    );
                    assert_eq!(out.recruited, reference.recruited);
                    assert_eq!(out.pruned, reference.pruned);
                    assert_eq!(out.stopped_at, reference.stopped_at);
                }
            }
        }
    }
}

#[test]
fn stopping_is_monotone_in_epsilon() {
    let n = 1200usize;
    let mut prev: Option<AdaptiveOutcome> = None;
    for epsilon in [0.3f64, 0.5, 0.9] {
        let ac = AdaptiveConfig { epsilon, ..active() };
        let out = run_adaptive(n, 1, 64, &ac, AdaptiveBackend::Streaming);
        if let Some(p) = &prev {
            for si in 0..tl_stimuli().len() {
                // A looser epsilon stops every stimulus no later.
                match (p.stopped_at[si], out.stopped_at[si]) {
                    (Some(tight), Some(loose)) => assert!(
                        loose <= tight,
                        "stimulus {si}: eps={epsilon} stopped at {loose} > {tight}"
                    ),
                    (None, _) => {}
                    (Some(tight), None) => {
                        panic!("stimulus {si}: stopped at {tight} under tighter eps but never under eps={epsilon}")
                    }
                }
            }
            assert!(out.recruited <= p.recruited);
            assert!(out.participants_saved() >= p.participants_saved());
        }
        prev = Some(out);
    }
}

#[test]
fn convergence_never_fires_before_min_n() {
    // A huge epsilon would stop everything at the first barrier were it
    // not for the min_n guard.
    let ac = AdaptiveConfig { epoch: 50, epsilon: 100.0, min_n: 300, max_n: 0 };
    let out = run_adaptive(1200, 0, 64, &ac, AdaptiveBackend::Flat);
    assert!(!out.decisions.is_empty());
    for d in &out.decisions {
        assert_eq!(d.cause, StopCause::Converged);
        assert!(d.retained >= ac.min_n, "{d:?} fired below min_n");
    }
}

#[test]
fn max_n_always_fires_even_without_epsilon() {
    let ac = AdaptiveConfig { epoch: 50, epsilon: 0.0, min_n: 256, max_n: 60 };
    let out = run_adaptive(1200, 0, 64, &ac, AdaptiveBackend::Streaming);
    // Every stimulus must stop (budget is ample), via the cap.
    assert!(out.stopped_at.iter().all(Option::is_some), "{:?}", out.stopped_at);
    assert_eq!(out.decisions.len(), tl_stimuli().len());
    for d in &out.decisions {
        assert_eq!(d.cause, StopCause::MaxN);
        assert!(d.retained >= ac.max_n, "{d:?} fired below max_n");
    }
    // Stopping every stimulus before budget exhaustion saves the tail.
    assert!(out.recruited < out.budget);
    assert!(out.participants_saved() > 0);
    for si in 0..tl_stimuli().len() {
        assert!(out.digest.stimuli[si].retained() >= ac.max_n);
    }
}

#[test]
fn live_digest_equals_full_run_truncated_at_stop() {
    // Serve-all/push-live semantics: a stimulus that never stops must
    // end with exactly the digest the plain streaming run gives it,
    // even while other stimuli stop and participants get pruned.
    let n = 1200usize;
    let ac = AdaptiveConfig { epoch: 100, epsilon: 0.0, min_n: 256, max_n: 120 };
    // Cap only takes effect per stimulus; run the full engine for the
    // truncation reference at each stop point's processed count.
    let out = run_adaptive(n, 1, 64, &ac, AdaptiveBackend::Streaming);
    for (si, stopped) in out.stopped_at.iter().enumerate() {
        let Some(epoch_idx) = stopped else { continue };
        let processed = (*epoch_idx as usize * ac.epoch).min(n);
        let truncated = stream_timeline_campaign(
            tl_stimuli(),
            &CrowdFlower,
            processed,
            &cfg(1),
            &paper_pipeline(),
            Seed(970),
            &stream_cfg(64),
        );
        assert_eq!(
            format!("{:?}", out.digest.stimuli[si]),
            format!("{:?}", truncated.stimuli[si]),
            "stimulus {si} stopped at barrier {epoch_idx} (processed={processed})"
        );
    }
}
