//! Campaign analysis: from raw rows to the paper's quantities.
//!
//! * per-video `UserPerceivedPLT` samples and their crowd aggregates
//!   (means for Fig. 7, standard deviations for Fig. 6b, distributions
//!   for Fig. 6a/9);
//! * A/B tallies, *agreement* (the fraction matching the most popular
//!   answer — Fig. 6c, Fig. 8a) and *score* ("the average score per
//!   website; 0 means the A version was faster, 1 means the B version
//!   was faster", No-Difference responses excluded — Fig. 8b/8c);
//! * Δ-bucketed agreement per PLT metric (Fig. 8a).

use eyeorg_stats::{percentile_band, Summary};

use crate::campaign::{AbCampaign, AbVerdict, TimelineCampaign};
use crate::filtering::FilterReport;

/// Per-video UPLT samples (seconds) from kept participants, optionally
/// wisdom-filtered to a percentile band.
pub fn uplt_samples(
    campaign: &TimelineCampaign,
    report: &FilterReport,
    band: Option<(f64, f64)>,
) -> Vec<Vec<f64>> {
    let mut per_video: Vec<Vec<f64>> = vec![Vec::new(); campaign.stimuli_names.len()];
    for row in &campaign.rows {
        if !report.kept.contains(&row.participant) {
            continue;
        }
        if let Some(resp) = row.response {
            per_video[row.stimulus].push(resp.submitted.as_secs_f64());
        }
    }
    if let Some((lo, hi)) = band {
        for v in &mut per_video {
            *v = percentile_band(v, lo, hi);
        }
    }
    if eyeorg_obs::enabled() {
        // Zero-adds still materialise the label, so sites whose responses
        // were all filtered out appear in the report with a 0 — the
        // "silently vanished site" failure mode stays visible.
        for (name, v) in campaign.stimuli_names.iter().zip(&per_video) {
            eyeorg_obs::metrics::CORE_RETAINED_PER_SITE.add(name, v.len() as u64);
        }
    }
    per_video
}

/// The same selection, but for the *pre-helper* slider choices and the
/// helper suggestions (Fig. 7a compares submitted/slider/helper).
pub fn uplt_components(
    campaign: &TimelineCampaign,
    report: &FilterReport,
) -> Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> {
    let mut out: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        vec![(Vec::new(), Vec::new(), Vec::new()); campaign.stimuli_names.len()];
    for row in &campaign.rows {
        if !report.kept.contains(&row.participant) {
            continue;
        }
        if let Some(resp) = row.response {
            out[row.stimulus].0.push(resp.submitted.as_secs_f64());
            out[row.stimulus].1.push(resp.slider.as_secs_f64());
            out[row.stimulus].2.push(resp.helper.as_secs_f64());
        }
    }
    out
}

/// Crowd UPLT per video: the mean of the (band-filtered) responses, as
/// the paper computes for Fig. 7. Videos with no surviving responses get
/// `None`.
pub fn mean_uplt(
    campaign: &TimelineCampaign,
    report: &FilterReport,
    band: Option<(f64, f64)>,
) -> Vec<Option<f64>> {
    uplt_samples(campaign, report, band)
        .into_iter()
        .map(|v| Summary::of(&v).map(|s| s.mean))
        .collect()
}

/// Per-video standard deviation of UPLT (the Fig. 6b agreement measure).
pub fn uplt_stdev(
    campaign: &TimelineCampaign,
    report: &FilterReport,
    band: Option<(f64, f64)>,
) -> Vec<Option<f64>> {
    uplt_samples(campaign, report, band)
        .into_iter()
        .map(|v| Summary::of(&v).map(|s| s.stdev))
        .collect()
}

/// A/B vote tally for one stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbTally {
    /// Votes for "A felt faster".
    pub a: u32,
    /// Votes for "B felt faster".
    pub b: u32,
    /// "No Difference" votes.
    pub nd: u32,
}

impl AbTally {
    /// Total votes.
    pub fn total(&self) -> u32 {
        self.a + self.b + self.nd
    }

    /// Fold one verdict in.
    pub fn record(&mut self, v: AbVerdict) {
        match v {
            AbVerdict::AFaster => self.a += 1,
            AbVerdict::BFaster => self.b += 1,
            AbVerdict::NoDifference => self.nd += 1,
        }
    }

    /// Fold another shard's tally for the same stimulus in. Integer
    /// adds are exact and associative, so the streaming engine's merge
    /// reproduces the materializing tally byte for byte.
    pub fn merge(&mut self, other: &AbTally) {
        self.a += other.a;
        self.b += other.b;
        self.nd += other.nd;
    }

    /// Agreement: the fraction of votes matching the most popular answer
    /// (§4.2: "independent of what that answer is").
    pub fn agreement(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        Some(f64::from(self.a.max(self.b).max(self.nd)) / f64::from(total))
    }

    /// Score in `[0, 1]`: 1 means B (the treatment) felt faster, 0 means
    /// A did. No-Difference responses are excluded, matching §5.3
    /// ("the score here does not take into account the 'No Difference'
    /// responses"). `None` when every vote was No Difference.
    pub fn score(&self) -> Option<f64> {
        let decided = self.a + self.b;
        if decided == 0 {
            return None;
        }
        Some(f64::from(self.b) / f64::from(decided))
    }

    /// Fraction of No-Difference responses.
    pub fn nd_rate(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some(f64::from(self.nd) / f64::from(total))
        }
    }
}

/// Tally each A/B stimulus over kept participants.
pub fn ab_tallies(campaign: &AbCampaign, report: &FilterReport) -> Vec<AbTally> {
    let mut tallies = vec![AbTally::default(); campaign.stimuli_names.len()];
    for row in &campaign.rows {
        if !report.kept.contains(&row.participant) {
            continue;
        }
        let Some(v) = row.verdict else { continue };
        tallies[row.stimulus].record(v);
    }
    tallies
}

/// Median agreement per Δ bucket (Fig. 8a): `deltas[i]` is the per-metric
/// |Δ| (seconds) of stimulus `i`; buckets are
/// `[edges[k], edges[k+1])`. Returns one `Option<f64>` per bucket (None
/// when the bucket is empty).
pub fn agreement_by_delta(
    tallies: &[AbTally],
    deltas: &[f64],
    edges: &[f64],
) -> Vec<Option<f64>> {
    assert_eq!(tallies.len(), deltas.len(), "one delta per stimulus");
    assert!(edges.len() >= 2, "need at least one bucket");
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); edges.len() - 1];
    for (t, &d) in tallies.iter().zip(deltas) {
        let Some(agree) = t.agreement() else { continue };
        for k in 0..edges.len() - 1 {
            if d >= edges[k] && d < edges[k + 1] {
                buckets[k].push(agree);
                break;
            }
        }
    }
    buckets
        .into_iter()
        .map(|b| Summary::of(&b).map(|s| s.median))
        .collect()
}

/// Behavioural aggregates for Fig. 4/5: total time on site and total
/// action count per kept-or-not participant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorPoint {
    /// Participant index.
    pub participant: usize,
    /// Total minutes spent across their videos (incl. instructions).
    pub minutes_on_site: f64,
    /// Total play/pause/seek actions.
    pub actions: u32,
    /// Total seconds out of focus.
    pub out_of_focus_secs: f64,
    /// Largest single-video load time, seconds (Fig. 5's `L`).
    pub max_video_load_secs: f64,
}

/// Compute behaviour aggregates for every participant of a timeline
/// campaign (the unfiltered view §4.2 analyses).
pub fn behavior_points(campaign: &TimelineCampaign) -> Vec<BehaviorPoint> {
    (0..campaign.participants.len())
        .map(|pi| {
            let sessions = crate::campaign::sessions_of(&campaign.rows, pi);
            let total = eyeorg_crowd::total_time_on_site(&sessions, &campaign.participants[pi]);
            BehaviorPoint {
                participant: pi,
                minutes_on_site: total.as_secs_f64() / 60.0,
                actions: sessions.iter().map(|s| s.actions()).sum(),
                out_of_focus_secs: sessions
                    .iter()
                    .map(|s| s.out_of_focus.as_secs_f64())
                    .sum(),
                max_video_load_secs: sessions
                    .iter()
                    .map(|s| s.video_load.as_secs_f64())
                    .fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Same aggregates for an A/B campaign.
pub fn ab_behavior_points(campaign: &AbCampaign) -> Vec<BehaviorPoint> {
    (0..campaign.participants.len())
        .map(|pi| {
            let sessions = crate::campaign::ab_sessions_of(&campaign.rows, pi);
            let total = eyeorg_crowd::total_time_on_site(&sessions, &campaign.participants[pi]);
            BehaviorPoint {
                participant: pi,
                minutes_on_site: total.as_secs_f64() / 60.0,
                actions: sessions.iter().map(|s| s.actions()).sum(),
                out_of_focus_secs: sessions
                    .iter()
                    .map(|s| s.out_of_focus.as_secs_f64())
                    .sum(),
                max_video_load_secs: sessions
                    .iter()
                    .map(|s| s.video_load.as_secs_f64())
                    .fold(0.0, f64::max),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_agreement_and_score() {
        let t = AbTally { a: 2, b: 6, nd: 2 };
        assert_eq!(t.total(), 10);
        assert_eq!(t.agreement(), Some(0.6));
        assert_eq!(t.score(), Some(0.75));
        assert_eq!(t.nd_rate(), Some(0.2));
    }

    #[test]
    fn tally_degenerate_cases() {
        assert_eq!(AbTally::default().agreement(), None);
        let all_nd = AbTally { a: 0, b: 0, nd: 5 };
        assert_eq!(all_nd.score(), None);
        assert_eq!(all_nd.agreement(), Some(1.0));
    }

    #[test]
    fn agreement_by_delta_buckets() {
        let tallies = vec![
            AbTally { a: 9, b: 1, nd: 0 },  // high agreement, small delta
            AbTally { a: 5, b: 5, nd: 0 },  // low agreement, small delta
            AbTally { a: 10, b: 0, nd: 0 }, // full agreement, big delta
        ];
        let deltas = vec![0.1, 0.2, 1.0];
        let edges = vec![0.0, 0.5, 2.0];
        let med = agreement_by_delta(&tallies, &deltas, &edges);
        assert_eq!(med.len(), 2);
        assert!((med[0].unwrap() - 0.7).abs() < 1e-9); // median of 0.9, 0.5
        assert!((med[1].unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one delta per stimulus")]
    fn agreement_by_delta_length_mismatch() {
        agreement_by_delta(&[AbTally::default()], &[0.1, 0.2], &[0.0, 1.0]);
    }
}

/// Sensitivity of one demographic slice in an A/B campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DemographicSensitivity {
    /// Slice label, e.g. "tech 4-5" or "female".
    pub label: String,
    /// Kept participants in the slice.
    pub participants: usize,
    /// Votes cast by the slice (excluding skips).
    pub votes: usize,
    /// Fraction of votes that were decided (not "No Difference") — the
    /// direct read-out of how sensitive the slice is to load-time deltas.
    pub decided_rate: f64,
    /// Of the decided votes, the fraction agreeing with each stimulus's
    /// majority decision (a proxy for discrimination accuracy without
    /// ground truth, per the paper's wisdom-of-the-crowd argument).
    pub majority_agreement: f64,
}

/// Break an A/B campaign's sensitivity down by demographic slices —
/// the paper's "which demographics are more sensitive to PLT speedup?"
/// (§3) — over the kept participants.
pub fn ab_demographics(
    campaign: &AbCampaign,
    report: &FilterReport,
) -> Vec<DemographicSensitivity> {
    use eyeorg_crowd::Gender;
    let tallies = ab_tallies(campaign, report);
    let majority: Vec<Option<AbVerdict>> = tallies
        .iter()
        .map(|t| {
            if t.total() == 0 {
                None
            } else if t.a >= t.b && t.a >= t.nd {
                Some(AbVerdict::AFaster)
            } else if t.b >= t.a && t.b >= t.nd {
                Some(AbVerdict::BFaster)
            } else {
                Some(AbVerdict::NoDifference)
            }
        })
        .collect();

    let slice = |label: &str, member: &dyn Fn(&eyeorg_crowd::Participant) -> bool| {
        let mut participants = 0usize;
        let mut votes = 0usize;
        let mut decided = 0usize;
        let mut agree = 0usize;
        for (pi, p) in campaign.participants.iter().enumerate() {
            if !report.kept.contains(&pi) || !member(p) {
                continue;
            }
            participants += 1;
            for row in campaign.rows.iter().filter(|r| r.participant == pi) {
                let Some(v) = row.verdict else { continue };
                votes += 1;
                if v != AbVerdict::NoDifference {
                    decided += 1;
                    if majority[row.stimulus] == Some(v) {
                        agree += 1;
                    }
                }
            }
        }
        DemographicSensitivity {
            label: label.to_owned(),
            participants,
            votes,
            decided_rate: decided as f64 / votes.max(1) as f64,
            majority_agreement: agree as f64 / decided.max(1) as f64,
        }
    };

    vec![
        slice("tech 1-2", &|p| p.tech_savvy <= 2),
        slice("tech 3", &|p| p.tech_savvy == 3),
        slice("tech 4-5", &|p| p.tech_savvy >= 4),
        slice("male", &|p| p.gender == Gender::Male),
        slice("female", &|p| p.gender == Gender::Female),
    ]
}
