//! D3 waived: the counter is monotonic scratch state, never output.

use std::sync::atomic::{AtomicU64, Ordering};

pub static SCRATCH: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    // lint:allow(D3): relaxed increments only feed a debug gauge; no ordering reaches results
    SCRATCH.fetch_add(1, Ordering::Relaxed)
}
