//! Packet-loss processes.
//!
//! webpeg (the paper's capture tool) records loads over real networks whose
//! loss behaviour shapes the HTTP/1.1-vs-HTTP/2 comparison: H2's single
//! connection is more sensitive to a loss event than H1's six parallel
//! ones, and the paper's A/B campaign inherits whatever the live path did.
//! The reproduction makes loss an explicit, seeded process so the protocol
//! comparison explores the same regime reproducibly.
//!
//! Two models are provided:
//!
//! * [`LossModel::Bernoulli`] — i.i.d. loss with a fixed probability.
//! * [`LossModel::GilbertElliott`] — the classic two-state bursty model:
//!   a Good state with negligible loss and a Bad state with heavy loss,
//!   with geometric sojourn times. Bursty loss is what real access links
//!   exhibit and what punishes a single congestion window the most.

use eyeorg_stats::rng::Rng;

use eyeorg_stats::Seed;

/// Configuration of a loss process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss at all (useful for controlled experiments and tests).
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) loss.
    GilbertElliott {
        /// Probability of moving Good → Bad at each packet.
        p_good_to_bad: f64,
        /// Probability of moving Bad → Good at each packet.
        p_bad_to_good: f64,
        /// Drop probability while in the Good state.
        loss_good: f64,
        /// Drop probability while in the Bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Average long-run loss rate implied by the model.
    pub fn mean_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good; // chain never leaves its initial (Good) state
                }
                let pi_bad = p_good_to_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// A running, seeded instance of a [`LossModel`].
#[derive(Debug)]
pub struct LossProcess {
    model: LossModel,
    rng: Rng,
    in_bad_state: bool,
    observed_drops: u64,
    observed_packets: u64,
}

impl LossProcess {
    /// Instantiate the process with its own derived RNG stream.
    pub fn new(model: LossModel, seed: Seed) -> LossProcess {
        LossProcess {
            model,
            rng: Rng::seed_from_u64(seed.derive("loss").value()),
            in_bad_state: false,
            observed_drops: 0,
            observed_packets: 0,
        }
    }

    /// Decide the fate of the next packet: `true` means *dropped*.
    pub fn drops_next(&mut self) -> bool {
        self.observed_packets += 1;
        let dropped = match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && self.rng.random_bool(p.clamp(0.0, 1.0)),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                // Transition first, then draw loss from the new state.
                if self.in_bad_state {
                    if p_bad_to_good > 0.0 && self.rng.random_bool(p_bad_to_good.clamp(0.0, 1.0)) {
                        self.in_bad_state = false;
                    }
                } else if p_good_to_bad > 0.0
                    && self.rng.random_bool(p_good_to_bad.clamp(0.0, 1.0))
                {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state { loss_bad } else { loss_good };
                p > 0.0 && self.rng.random_bool(p.clamp(0.0, 1.0))
            }
        };
        if dropped {
            self.observed_drops += 1;
        }
        dropped
    }

    /// Fraction of packets dropped so far (0 when none observed).
    pub fn observed_loss_rate(&self) -> f64 {
        if self.observed_packets == 0 {
            0.0
        } else {
            self.observed_drops as f64 / self.observed_packets as f64
        }
    }

    /// The configured model.
    pub fn model(&self) -> LossModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut p = LossProcess::new(LossModel::None, Seed(1));
        assert!((0..10_000).all(|_| !p.drops_next()));
        assert_eq!(p.observed_loss_rate(), 0.0);
    }

    #[test]
    fn bernoulli_rate_converges() {
        let mut p = LossProcess::new(LossModel::Bernoulli { p: 0.02 }, Seed(7));
        for _ in 0..100_000 {
            p.drops_next();
        }
        let r = p.observed_loss_rate();
        assert!((r - 0.02).abs() < 0.004, "observed {r}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = LossProcess::new(LossModel::Bernoulli { p: 0.1 }, seed);
            (0..100).map(|_| p.drops_next()).collect::<Vec<_>>()
        };
        assert_eq!(run(Seed(3)), run(Seed(3)));
        assert_ne!(run(Seed(3)), run(Seed(4)));
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.005,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        let mut p = LossProcess::new(model, Seed(11));
        let fates: Vec<bool> = (0..200_000).map(|_| p.drops_next()).collect();
        // Burstiness: the probability a drop follows a drop should far
        // exceed the marginal loss rate.
        let marginal = p.observed_loss_rate();
        let mut after_drop = 0u64;
        let mut drops_followed = 0u64;
        for w in fates.windows(2) {
            if w[0] {
                after_drop += 1;
                if w[1] {
                    drops_followed += 1;
                }
            }
        }
        let conditional = drops_followed as f64 / after_drop as f64;
        assert!(conditional > 2.0 * marginal, "cond {conditional} vs marg {marginal}");
        // Mean rate matches the stationary analysis (π_bad ≈ 0.0244, ×0.5).
        let expected = model.mean_loss_rate();
        assert!((marginal - expected).abs() < 0.01, "marg {marginal} vs exp {expected}");
    }

    #[test]
    fn mean_loss_rate_formulas() {
        assert_eq!(LossModel::None.mean_loss_rate(), 0.0);
        assert_eq!(LossModel::Bernoulli { p: 0.3 }.mean_loss_rate(), 0.3);
        let ge = LossModel::GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.4,
        };
        // π_bad = 0.1/0.4 = 0.25 → mean = 0.25*0.4 = 0.1
        assert!((ge.mean_loss_rate() - 0.1).abs() < 1e-12);
    }
}
