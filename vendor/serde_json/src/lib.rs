//! Offline stand-in for `serde_json`, over the vendored `serde` shim.
//!
//! Provides exactly the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`] and [`Error`]. Output
//! formatting matches real serde_json (compact: no spaces; pretty:
//! two-space indent), so golden files don't depend on which
//! implementation produced them.

#![forbid(unsafe_code)]

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string. Never fails for the
/// types this workspace serializes; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document into `T`.
// lint:entrypoint(untrusted)
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display matches serde_json for
        // finite values except that serde_json always keeps a ".0" on
        // integral floats — preserve that so floats stay floats on
        // re-parse.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; exports here
        // never contain them, so emit null as a safe fallback.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_number(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        // lint:allow(D7): pos <= bytes.len() is the parser cursor invariant
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                // lint:allow(D7): start <= pos <= bytes.len() by the scan loop above
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u codepoint".into()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // lint:allow(D7): start <= pos <= bytes.len() by the scan loop above
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}
