//! The resource model: what a web page is made of.
//!
//! webpeg records real pages; the reproduction needs a structural stand-in
//! rich enough that every downstream phenomenon the paper studies can
//! occur: render-blocking CSS/JS, late script-injected ads (the source of
//! Fig. 9's multi-modal "ready" distributions), above-/below-the-fold
//! placement (the input to SpeedIndex), third-party origins (what ad
//! blockers remove), and onload semantics (statically discovered
//! resources gate `onload`; script-injected ones may land after it).

use serde::{Deserialize, Serialize};

/// Index of a resource within its [`crate::site::Website`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

/// Index of an origin within its website's origin table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OriginRef(pub u16);

/// What kind of resource this is; drives sizing, priority, blocking
/// semantics and ad-blocker treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// The main document.
    Html,
    /// A stylesheet (render-blocking).
    Css,
    /// A script; [`Resource::defer`] distinguishes sync (parser-blocking)
    /// from deferred/async execution.
    Js,
    /// An image.
    Image,
    /// A web font (render-blocking for the text it styles).
    Font,
    /// A display advertisement (visual, third-party).
    Ad,
    /// An analytics/tracking script (invisible, third-party).
    Tracker,
    /// A social widget (like button, embedded feed): visual, third-party.
    Widget,
}

impl ResourceKind {
    /// Whether the resource paints pixels when it finishes loading.
    pub fn is_visual(self) -> bool {
        matches!(
            self,
            ResourceKind::Html
                | ResourceKind::Css
                | ResourceKind::Image
                | ResourceKind::Ad
                | ResourceKind::Widget
        )
    }

    /// Whether the resource is third-party auxiliary content (the class
    /// participants in §6 describe ignoring when judging "ready").
    pub fn is_auxiliary(self) -> bool {
        matches!(self, ResourceKind::Ad | ResourceKind::Tracker | ResourceKind::Widget)
    }
}

/// Axis-aligned rectangle in page coordinates (CSS pixels; y grows
/// downward). Pages are laid out on a fixed-width canvas and the
/// viewport's fold line decides what is above the fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
}

impl Rect {
    /// Area in px².
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// The portion of this rect above the horizontal line `fold_y`
    /// (i.e. within the initial viewport), or `None` if fully below.
    pub fn above_fold(&self, fold_y: u32) -> Option<Rect> {
        if self.y >= fold_y {
            return None;
        }
        let visible_h = (fold_y - self.y).min(self.h);
        Some(Rect { x: self.x, y: self.y, w: self.w, h: visible_h })
    }

    /// Whether two rects overlap (zero-area touching does not count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }
}

/// How the browser finds out a resource exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Discovery {
    /// It is the root document (fetched from the address bar).
    Root,
    /// Referenced by the HTML; discovered when the parser has consumed
    /// the given fraction of the document's bytes (0.0 = very first tag,
    /// 1.0 = last byte).
    Html {
        /// Fraction of document bytes parsed at the reference point.
        at_fraction: f32,
    },
    /// Referenced from a stylesheet/script: discovered when that parent
    /// resource has loaded (and, for scripts, executed).
    Parent {
        /// The referencing resource.
        parent: ResourceId,
    },
}

/// One fetchable resource of a website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Identity within the website.
    pub id: ResourceId,
    /// Kind (drives priority/blocking/ad-blocking semantics).
    pub kind: ResourceKind,
    /// Which origin serves it.
    pub origin: OriginRef,
    /// Response body size in bytes.
    pub body_bytes: u64,
    /// Request header size (cookies scale with the origin).
    pub request_header_bytes: u64,
    /// Response header size.
    pub response_header_bytes: u64,
    /// Visual footprint in page coordinates; `None` for non-visual
    /// resources (scripts, trackers, fonts).
    pub rect: Option<Rect>,
    /// How the browser discovers it.
    pub discovery: Discovery,
    /// Whether it blocks rendering until loaded (CSS, fonts in use).
    pub render_blocking: bool,
    /// For scripts: deferred/async (does not block the parser).
    pub defer: bool,
    /// Server processing time for this resource, in microseconds (kept as
    /// a plain integer so the type serialises cleanly).
    pub server_think_us: u64,
}

impl Resource {
    /// Whether this script blocks HTML parsing at its reference point.
    pub fn parser_blocking(&self) -> bool {
        self.kind == ResourceKind::Js && !self.defer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visual_and_auxiliary_classification() {
        assert!(ResourceKind::Image.is_visual());
        assert!(ResourceKind::Ad.is_visual());
        assert!(!ResourceKind::Js.is_visual());
        assert!(!ResourceKind::Tracker.is_visual());
        assert!(ResourceKind::Ad.is_auxiliary());
        assert!(ResourceKind::Widget.is_auxiliary());
        assert!(!ResourceKind::Css.is_auxiliary());
    }

    #[test]
    fn rect_area_and_fold() {
        let r = Rect { x: 0, y: 500, w: 100, h: 300 };
        assert_eq!(r.area(), 30_000);
        // Fold at 600: top 100px visible.
        let above = r.above_fold(600).unwrap();
        assert_eq!(above.h, 100);
        assert_eq!(above.area(), 10_000);
        // Fold at 500: fully below.
        assert!(r.above_fold(500).is_none());
        // Fold far down: fully visible.
        assert_eq!(r.above_fold(10_000).unwrap(), r);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect { x: 0, y: 0, w: 10, h: 10 };
        let b = Rect { x: 5, y: 5, w: 10, h: 10 };
        let c = Rect { x: 10, y: 0, w: 5, h: 5 };
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "edge-touching is not overlap");
    }

    #[test]
    fn parser_blocking_semantics() {
        let mut r = Resource {
            id: ResourceId(1),
            kind: ResourceKind::Js,
            origin: OriginRef(0),
            body_bytes: 100,
            request_header_bytes: 100,
            response_header_bytes: 100,
            rect: None,
            discovery: Discovery::Html { at_fraction: 0.1 },
            render_blocking: false,
            defer: false,
            server_think_us: 0,
        };
        assert!(r.parser_blocking());
        r.defer = true;
        assert!(!r.parser_blocking());
        r.kind = ResourceKind::Css;
        assert!(!r.parser_blocking());
    }
}
