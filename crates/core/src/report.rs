//! Reporting and dataset export.
//!
//! The paper releases its crowdsourced dataset at eyeorg.net; this module
//! reproduces that release format (JSON rows of anonymised responses plus
//! campaign metadata) and the Table-1-style campaign summaries the bench
//! harness prints.

use serde::{Deserialize, Serialize};

use crate::campaign::{AbCampaign, AbVerdict, TimelineCampaign};
use crate::filtering::FilterReport;

/// One exported timeline response (the public dataset row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineExportRow {
    /// Anonymous participant number within the campaign.
    pub participant: usize,
    /// Gender as reported ("m"/"f").
    pub gender: String,
    /// Country as reported.
    pub country: String,
    /// Site/video identifier.
    pub video: String,
    /// Submitted UserPerceivedPLT, seconds.
    pub uplt_secs: Option<f64>,
    /// Their pre-helper slider choice, seconds.
    pub slider_secs: Option<f64>,
    /// Whether the frame helper's suggestion was accepted.
    pub accepted_helper: Option<bool>,
    /// Seek actions on this video.
    pub seeks: u32,
    /// Out-of-focus seconds during this test.
    pub out_of_focus_secs: f64,
    /// Whether the participant survived the filtering pipeline.
    pub kept: bool,
}

/// One exported A/B response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbExportRow {
    /// Anonymous participant number.
    pub participant: usize,
    /// Gender as reported ("m"/"f").
    pub gender: String,
    /// Country as reported.
    pub country: String,
    /// Site/pair identifier.
    pub pair: String,
    /// Verdict in stimulus space ("a", "b", "nd"); absent when skipped.
    pub verdict: Option<String>,
    /// Whether A was shown on the left.
    pub a_left: bool,
    /// Whether the participant survived filtering.
    pub kept: bool,
}

/// Campaign metadata included with every export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportMeta {
    /// Campaign label.
    pub campaign: String,
    /// Number of participants recruited.
    pub participants: usize,
    /// Recruitment cost, USD.
    pub cost_usd: f64,
    /// Recruitment wall time, hours.
    pub recruitment_hours: f64,
    /// Participants dropped by each §4.3 filter.
    pub filtered_engagement: usize,
    /// Soft-rule drops.
    pub filtered_soft: usize,
    /// Control-question drops.
    pub filtered_control: usize,
}

/// The full dataset document for a timeline campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineExport {
    /// Metadata block.
    pub meta: ExportMeta,
    /// One row per showing.
    pub rows: Vec<TimelineExportRow>,
}

/// The full dataset document for an A/B campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbExport {
    /// Metadata block.
    pub meta: ExportMeta,
    /// One row per showing.
    pub rows: Vec<AbExportRow>,
}

fn gender_str(g: eyeorg_crowd::Gender) -> &'static str {
    match g {
        eyeorg_crowd::Gender::Male => "m",
        eyeorg_crowd::Gender::Female => "f",
    }
}

/// Build the public dataset view of a timeline campaign.
pub fn export_timeline(
    label: &str,
    campaign: &TimelineCampaign,
    report: &FilterReport,
) -> TimelineExport {
    let rows = campaign
        .rows
        .iter()
        .map(|r| {
            let p = &campaign.participants[r.participant];
            TimelineExportRow {
                participant: r.participant,
                gender: gender_str(p.gender).to_owned(),
                country: p.country.clone(),
                video: campaign.stimuli_names[r.stimulus].clone(),
                uplt_secs: r.response.map(|resp| resp.submitted.as_secs_f64()),
                slider_secs: r.response.map(|resp| resp.slider.as_secs_f64()),
                accepted_helper: r.response.map(|resp| resp.accepted_helper),
                seeks: r.session.seeks,
                out_of_focus_secs: r.session.out_of_focus.as_secs_f64(),
                kept: report.kept.contains(&r.participant),
            }
        })
        .collect();
    TimelineExport {
        meta: ExportMeta {
            campaign: label.to_owned(),
            participants: campaign.participants.len(),
            cost_usd: campaign.recruitment_cost_usd,
            recruitment_hours: campaign.recruitment_duration_secs / 3600.0,
            filtered_engagement: report.engagement,
            filtered_soft: report.soft,
            filtered_control: report.control,
        },
        rows,
    }
}

/// Build the public dataset view of an A/B campaign.
pub fn export_ab(label: &str, campaign: &AbCampaign, report: &FilterReport) -> AbExport {
    let rows = campaign
        .rows
        .iter()
        .map(|r| {
            let p = &campaign.participants[r.participant];
            AbExportRow {
                participant: r.participant,
                gender: gender_str(p.gender).to_owned(),
                country: p.country.clone(),
                pair: campaign.stimuli_names[r.stimulus].clone(),
                verdict: r.verdict.map(|v| {
                    match v {
                        AbVerdict::AFaster => "a",
                        AbVerdict::BFaster => "b",
                        AbVerdict::NoDifference => "nd",
                    }
                    .to_owned()
                }),
                a_left: r.a_left,
                kept: report.kept.contains(&r.participant),
            }
        })
        .collect();
    AbExport {
        meta: ExportMeta {
            campaign: label.to_owned(),
            participants: campaign.participants.len(),
            cost_usd: campaign.recruitment_cost_usd,
            recruitment_hours: campaign.recruitment_duration_secs / 3600.0,
            filtered_engagement: report.engagement,
            filtered_soft: report.soft,
            filtered_control: report.control,
        },
        rows,
    }
}

/// Serialise an export as pretty JSON (the release format).
pub fn to_json<T: Serialize>(export: &T) -> String {
    // lint:allow(D4): exports are plain structs of numbers and strings; serialisation cannot fail
    serde_json::to_string_pretty(export).expect("export serialisation cannot fail")
}

/// One line of a Table-1-style summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Campaign name (e.g. "PLT timeline").
    pub campaign: String,
    /// "Paid" or "Trusted".
    pub pool: String,
    /// Male/female split, e.g. "76/24".
    pub gender_split: String,
    /// Recruitment duration as reported (hours or days).
    pub duration: String,
    /// Cost as reported.
    pub cost: String,
    /// Number of distinct sites/videos.
    pub sites: usize,
    /// Engagement-filter drops.
    pub engagement: usize,
    /// Soft-rule drops.
    pub soft: usize,
    /// Control drops.
    pub control: usize,
}

/// Produce a Table-1 row from campaign data.
pub fn table1_row(
    campaign_name: &str,
    pool: &str,
    participants: &[eyeorg_crowd::Participant],
    cost_usd: f64,
    recruitment_secs: f64,
    sites: usize,
    report: &FilterReport,
) -> Table1Row {
    let males =
        participants.iter().filter(|p| p.gender == eyeorg_crowd::Gender::Male).count();
    let n = participants.len().max(1);
    let male_pct = (males * 100 + n / 2) / n;
    let duration = if recruitment_secs >= 36.0 * 3600.0 {
        format!("{:.1} days", recruitment_secs / 86_400.0)
    } else {
        format!("{:.1} hours", recruitment_secs / 3600.0)
    };
    let cost = if cost_usd == 0.0 { "-".to_owned() } else { format!("${cost_usd:.0}") };
    Table1Row {
        campaign: campaign_name.to_owned(),
        pool: pool.to_owned(),
        gender_split: format!("{male_pct}/{}", 100 - male_pct),
        duration,
        cost,
        sites,
        engagement: report.engagement,
        soft: report.soft,
        control: report.control,
    }
}

/// Render Table-1 rows with [`crate::viz::table`].
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut cells = vec![vec![
        "Campaign".to_owned(),
        "Pool".to_owned(),
        "M/F".to_owned(),
        "Duration".to_owned(),
        "Cost".to_owned(),
        "#Sites".to_owned(),
        "Engagement".to_owned(),
        "Soft".to_owned(),
        "Control".to_owned(),
    ]];
    for r in rows {
        cells.push(vec![
            r.campaign.clone(),
            r.pool.clone(),
            r.gender_split.clone(),
            r.duration.clone(),
            r.cost.clone(),
            r.sites.to_string(),
            r.engagement.to_string(),
            r.soft.to_string(),
            r.control.to_string(),
        ]);
    }
    crate::viz::table(&cells)
}
