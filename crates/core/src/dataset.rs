//! Reading the released dataset back.
//!
//! The paper publishes its crowdsourced responses at eyeorg.net so that
//! "the community at large can leverage" the data. This module is the
//! consumer side of our release format (`crate::report`): parse a dataset
//! document and recompute the standard aggregates without access to the
//! original campaign objects — exactly what a downstream researcher does.

use std::collections::BTreeMap;

use eyeorg_stats::{percentile_band, Summary};

use crate::report::{AbExport, TimelineExport};

/// Errors raised while reading a dataset document.
#[derive(Debug)]
pub enum DatasetError {
    /// The document was not valid JSON for the expected schema.
    Parse(serde_json::Error),
    /// Structurally valid but semantically inconsistent (e.g. more kept
    /// rows than participants).
    Inconsistent(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Parse(e) => write!(f, "dataset parse error: {e}"),
            DatasetError::Inconsistent(m) => write!(f, "inconsistent dataset: {m}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Parse a timeline dataset document from JSON.
pub fn read_timeline(json: &str) -> Result<TimelineExport, DatasetError> {
    let export: TimelineExport = serde_json::from_str(json).map_err(DatasetError::Parse)?;
    validate_timeline(&export)?;
    Ok(export)
}

/// Parse an A/B dataset document from JSON.
pub fn read_ab(json: &str) -> Result<AbExport, DatasetError> {
    let export: AbExport = serde_json::from_str(json).map_err(DatasetError::Parse)?;
    for row in &export.rows {
        if row.participant >= export.meta.participants {
            return Err(DatasetError::Inconsistent(format!(
                "row references participant {} of {}",
                row.participant, export.meta.participants
            )));
        }
        if let Some(v) = &row.verdict {
            if !matches!(v.as_str(), "a" | "b" | "nd") {
                return Err(DatasetError::Inconsistent(format!("unknown verdict {v:?}")));
            }
        }
    }
    Ok(export)
}

fn validate_timeline(export: &TimelineExport) -> Result<(), DatasetError> {
    for row in &export.rows {
        if row.participant >= export.meta.participants {
            return Err(DatasetError::Inconsistent(format!(
                "row references participant {} of {}",
                row.participant, export.meta.participants
            )));
        }
        if let Some(u) = row.uplt_secs {
            if !u.is_finite() || u < 0.0 {
                return Err(DatasetError::Inconsistent(format!("bad UPLT {u}")));
            }
        }
    }
    Ok(())
}

/// Per-video crowd UPLT recomputed from a dataset document alone (kept
/// responses, 25–75 band) — what a consumer of the release reproduces
/// first.
pub fn crowd_uplt_from_dataset(export: &TimelineExport) -> BTreeMap<String, f64> {
    let mut per_video: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for row in &export.rows {
        if !row.kept {
            continue;
        }
        if let Some(u) = row.uplt_secs {
            per_video.entry(row.video.clone()).or_default().push(u);
        }
    }
    per_video
        .into_iter()
        .filter_map(|(video, responses)| {
            let banded = percentile_band(&responses, 25.0, 75.0);
            Summary::of(&banded).map(|s| (video, s.mean))
        })
        .collect()
}

/// Per-pair score recomputed from an A/B dataset document alone.
pub fn scores_from_dataset(export: &AbExport) -> BTreeMap<String, f64> {
    let mut tallies: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    for row in &export.rows {
        if !row.kept {
            continue;
        }
        match row.verdict.as_deref() {
            Some("a") => tallies.entry(row.pair.clone()).or_default().0 += 1,
            Some("b") => tallies.entry(row.pair.clone()).or_default().1 += 1,
            _ => {}
        }
    }
    tallies
        .into_iter()
        .filter_map(|(pair, (a, b))| {
            let decided = a + b;
            if decided == 0 {
                None
            } else {
                Some((pair, f64::from(b) / f64::from(decided)))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AbExportRow, ExportMeta, TimelineExportRow};

    fn meta(n: usize) -> ExportMeta {
        ExportMeta {
            campaign: "t".into(),
            participants: n,
            cost_usd: 1.0,
            recruitment_hours: 1.0,
            filtered_engagement: 0,
            filtered_soft: 0,
            filtered_control: 0,
        }
    }

    fn tl_row(p: usize, video: &str, uplt: f64, kept: bool) -> TimelineExportRow {
        TimelineExportRow {
            participant: p,
            gender: "m".into(),
            country: "VE".into(),
            video: video.into(),
            uplt_secs: Some(uplt),
            slider_secs: Some(uplt + 0.2),
            accepted_helper: Some(true),
            seeks: 10,
            out_of_focus_secs: 0.0,
            kept,
        }
    }

    #[test]
    fn timeline_roundtrip_and_aggregate() {
        let export = TimelineExport {
            meta: meta(4),
            rows: vec![
                tl_row(0, "v1", 2.0, true),
                tl_row(1, "v1", 2.4, true),
                tl_row(2, "v1", 2.2, true),
                tl_row(3, "v1", 50.0, false), // filtered out
            ],
        };
        let json = crate::report::to_json(&export);
        let back = read_timeline(&json).expect("parses");
        let uplt = crowd_uplt_from_dataset(&back);
        let v1 = uplt["v1"];
        assert!((2.0..=2.4).contains(&v1), "kept-only, banded mean: {v1}");
    }

    #[test]
    fn timeline_rejects_inconsistencies() {
        let bad = TimelineExport { meta: meta(1), rows: vec![tl_row(5, "v1", 2.0, true)] };
        let json = crate::report::to_json(&bad);
        assert!(matches!(read_timeline(&json), Err(DatasetError::Inconsistent(_))));

        let nan = TimelineExport {
            meta: meta(1),
            rows: vec![TimelineExportRow { uplt_secs: Some(f64::NAN), ..tl_row(0, "v", 1.0, true) }],
        };
        // NaN doesn't survive JSON round-tripping as a number; construct
        // the error path directly.
        assert!(validate_timeline(&nan).is_err());
    }

    #[test]
    fn ab_scores_recomputed() {
        let row = |p: usize, pair: &str, verdict: &str, kept: bool| AbExportRow {
            participant: p,
            gender: "f".into(),
            country: "US".into(),
            pair: pair.into(),
            verdict: Some(verdict.into()),
            a_left: true,
            kept,
        };
        let export = AbExport {
            meta: meta(4),
            rows: vec![
                row(0, "p1", "b", true),
                row(1, "p1", "b", true),
                row(2, "p1", "a", true),
                row(3, "p1", "nd", true),
            ],
        };
        let json = crate::report::to_json(&export);
        let back = read_ab(&json).expect("parses");
        let scores = scores_from_dataset(&back);
        assert!((scores["p1"] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ab_rejects_unknown_verdicts() {
        let export = AbExport {
            meta: meta(1),
            rows: vec![AbExportRow {
                participant: 0,
                gender: "m".into(),
                country: "US".into(),
                pair: "p".into(),
                verdict: Some("maybe".into()),
                a_left: false,
                kept: true,
            }],
        };
        let json = crate::report::to_json(&export);
        assert!(matches!(read_ab(&json), Err(DatasetError::Inconsistent(_))));
    }

    #[test]
    fn garbage_json_is_a_parse_error() {
        assert!(matches!(read_timeline("{not json"), Err(DatasetError::Parse(_))));
        assert!(matches!(read_ab("[]"), Err(DatasetError::Parse(_))));
    }
}
