//! Quality ablations for DESIGN.md's design decisions: what the paper's
//! mechanisms buy in *result quality* (the wall-time side lives in
//! `benches/ablation.rs`).
//!
//! 1. The §4.3 filter pipeline, one filter removed at a time.
//! 2. The wisdom-of-the-crowd band: none / 10–90 / 25–75.
//! 3. The frame-selection helper: submitted answers vs raw slider answers.

use eyeorg_core::analysis::{uplt_components, uplt_stdev};
use eyeorg_core::filtering::{
    filter_timeline, paper_pipeline, ActionsFilter, ControlFilter, FilterPipeline, FocusFilter,
    SoftRuleFilter,
};
use eyeorg_stats::Summary;

fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let validation = eyeorg_bench::campaigns::build_validation(&scale);
    let paid = &validation.tl_paid.campaign;
    let trusted = &validation.tl_trusted.campaign;
    let mut out = String::new();

    // ---- 1. filter-pipeline ablation -----------------------------------
    out.push_str("=== Ablation 1: drop one §4.3 filter at a time ===\n");
    out.push_str("pipeline                  kept  mean-stdev(s)\n");
    let variants: Vec<(&str, FilterPipeline)> = vec![
        ("full pipeline", paper_pipeline()),
        ("no actions filter", vec![
            Box::new(FocusFilter::default()),
            Box::new(SoftRuleFilter),
            Box::new(ControlFilter),
        ]),
        ("no focus filter", vec![
            Box::new(ActionsFilter::default()),
            Box::new(SoftRuleFilter),
            Box::new(ControlFilter),
        ]),
        ("no soft rule", vec![
            Box::new(ActionsFilter::default()),
            Box::new(FocusFilter::default()),
            Box::new(ControlFilter),
        ]),
        ("no control questions", vec![
            Box::new(ActionsFilter::default()),
            Box::new(FocusFilter::default()),
            Box::new(SoftRuleFilter),
        ]),
        ("no filtering at all", vec![]),
    ];
    for (name, pipeline) in &variants {
        let report = filter_timeline(paid, pipeline);
        let stdevs: Vec<f64> =
            uplt_stdev(paid, &report, None).into_iter().flatten().collect();
        let s = Summary::of(&stdevs).expect("non-empty");
        out.push_str(&format!("{name:<25} {:>4}  {:>8.2}\n", report.kept.len(), s.mean));
    }

    // ---- 2. wisdom band -------------------------------------------------
    out.push_str("\n=== Ablation 2: wisdom-of-the-crowd band ===\n");
    out.push_str("band     paid-stdev  trusted-stdev  gap\n");
    let rp = filter_timeline(paid, &paper_pipeline());
    let rt = filter_timeline(trusted, &paper_pipeline());
    for (name, band) in [("none", None), ("10-90", Some((10.0, 90.0))), ("25-75", Some((25.0, 75.0)))]
    {
        let sp: Vec<f64> = uplt_stdev(paid, &rp, band).into_iter().flatten().collect();
        let st: Vec<f64> = uplt_stdev(trusted, &rt, band).into_iter().flatten().collect();
        let mp = Summary::of(&sp).expect("non-empty").median;
        let mt = Summary::of(&st).expect("non-empty").median;
        out.push_str(&format!(
            "{name:<8} {mp:>9.2}s {mt:>13.2}s {:>5.2}s\n",
            (mp - mt).abs()
        ));
    }

    // ---- 3. frame helper --------------------------------------------------
    out.push_str("\n=== Ablation 3: frame-selection helper ===\n");
    let comps = uplt_components(paid, &rp);
    let mut with_helper = Vec::new();
    let mut without = Vec::new();
    for (submitted, slider, _) in &comps {
        let (Some(ms), Some(msl)) = (Summary::of(submitted), Summary::of(slider)) else {
            continue;
        };
        with_helper.push(ms.stdev);
        without.push(msl.stdev);
    }
    let sw = Summary::of(&with_helper).expect("non-empty").mean;
    let so = Summary::of(&without).expect("non-empty").mean;
    out.push_str(&format!(
        "per-video response stdev: submitted (helper on) {sw:.2}s vs raw slider {so:.2}s\n"
    ));
    out.push_str("(the helper pulls sloppy overshoot back to the true change point)\n");

    println!("{out}");
    let path = eyeorg_bench::write_result("ablation_quality.txt", &out);
    eprintln!("wrote {}", path.display());
}
