//! The adaptive early-stopping campaign driver (VidPlat-style pruning).
//!
//! DESIGN.md §3g measured the per-participant cost floor: ~70% of
//! campaign time is the seeded behavioural model both engines must run
//! draw-for-draw, so the next order-of-magnitude win is doing *fewer
//! participants*. VidPlat's headline idea does exactly that for
//! crowdsourced QoE: stop recruiting for a stimulus once its estimate
//! has converged. The mergeable accumulators of [`crate::digest`] are
//! the substrate — a stimulus's confidence half-width is a pure
//! read-out of its multiset-determined digest state.
//!
//! ## How recruitment proceeds
//!
//! Participants are processed in index order in fixed-size **epochs**
//! ([`AdaptiveConfig::epoch`]). Within an epoch the work is sharded and
//! parallelised exactly like the streaming/flat engines; at the epoch
//! **barrier** the epoch's shard folds are merged (shard order) into a
//! cumulative fold, and the stopping rule runs on that merged state:
//! a live stimulus stops when its UPLT confidence half-width — the max
//! of the [`Moments`](eyeorg_stats::stream::Moments) mean-CI half-width
//! and the sketch-resolution-aware median interval from
//! [`QuantileSketch::quantile_ci`](eyeorg_stats::stream::QuantileSketch::quantile_ci)
//! — is at most `epsilon` (subject to `min_n`), or unconditionally at
//! `max_n`. The campaign ends when every stimulus has stopped or the
//! participant budget is exhausted.
//!
//! ## Why the output is byte-identical across executions
//!
//! Decisions are taken **only at barriers**, on state that is a pure
//! function of (seed, config, processed index range, mask): shard folds
//! merge in shard order, every accumulator is multiset-determined, and
//! the mask consumed by an epoch is fixed before the epoch starts. So
//! the decision sequence — and with it every digest and counter
//! fingerprint — is invariant under shard size, thread count, and the
//! PR 4 chaos-seed exerciser (pinned by `adaptive_stopping` tests and
//! the `perf_adaptive` gates).
//!
//! ## Why live digests equal the truncated full run
//!
//! Mask semantics (shared by [`crate::stream::tl_fold_range`] and the
//! flat engine's column passes):
//!
//! * a served participant runs **all** assigned sessions, the control,
//!   the filters, and the behaviour push exactly as the full run —
//!   stopped stimuli are still *served*, their responses are just not
//!   *pushed* — so no participant-level outcome ever depends on another
//!   stimulus's stop decision;
//! * pushes go only to live stimuli, so a live stimulus's digest equals
//!   the full run's digest truncated at its own stop epoch;
//! * a participant is **pruned** (never trait-generated or served —
//!   that is the saving) only when *every* assigned stimulus has
//!   stopped, and still consumes their admitted index so later
//!   assignments match the full run.
//!
//! A consequence worth naming: each stimulus's stop decision depends
//! only on its own truncated-full-run digest, so decisions are
//! monotone in `epsilon` and independent of the rest of the mask.
//! With `epsilon = 0` and `max_n = 0` no rule can fire, nothing is
//! pruned, and the driver is byte-identical — digest *and* counter
//! fingerprint — to the plain streaming engine.

use eyeorg_crowd::RecruitmentService;
use eyeorg_stats::{resolve_threads, Seed};

use crate::digest::{DigestParams, StimulusDigest, TimelineDigest};
use crate::experiment::{AdaptiveConfig, ExperimentConfig, TimelineStimulus};
use crate::filtering::ParticipantFilter;
use crate::flat::{flat_tl_epoch, FlatTlCtx};
use crate::stream::{merge_tl_shards, stream_tl_epoch, tl_frames, StreamConfig, TlCtx, TlShard};

/// Critical value for the stopping rule's confidence intervals (~95%
/// two-sided normal). A fixed constant, not a knob: epsilon is the
/// tuning surface, and a fixed z keeps decision fingerprints
/// comparable across runs.
pub const ADAPTIVE_Z: f64 = 1.96;

/// Which engine executes the epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveBackend {
    /// Participant-at-a-time shard folds ([`crate::stream`]).
    Streaming,
    /// Structure-of-arrays column passes ([`crate::flat`]).
    Flat,
}

/// Why a stimulus stopped recruiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// Confidence half-width dropped to `epsilon` or below.
    Converged,
    /// Hit the `max_n` kept-response cap.
    MaxN,
}

/// One stopping decision, in the order taken. The `Debug` rendering of
/// the decision list is the run's decision fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct StopDecision {
    /// 1-based epoch barrier at which the decision fired.
    pub epoch: u64,
    /// Stimulus index.
    pub stimulus: usize,
    /// Stimulus name (for reports).
    pub name: String,
    /// Kept responses at the barrier.
    pub retained: u64,
    /// Confidence half-width at the barrier (infinite when `max_n`
    /// fired before a half-width was computable).
    pub half_width: f64,
    /// Which rule fired.
    pub cause: StopCause,
}

/// The result of an adaptive campaign.
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// The final digest over every pushed response. `recruited`, cost,
    /// and duration reflect the participants actually processed (the
    /// point of stopping early), not the offered budget.
    pub digest: TimelineDigest,
    /// The offered participant budget.
    pub budget: u64,
    /// Participant indices actually processed (recruitment stops at the
    /// epoch barrier after the last stimulus stops).
    pub recruited: u64,
    /// Gate-admitted participants pruned mid-run because every assigned
    /// stimulus had stopped.
    pub pruned: u64,
    /// Epoch barriers evaluated.
    pub epochs: u64,
    /// Stopping decisions, in the order taken.
    pub decisions: Vec<StopDecision>,
    /// Per stimulus: the epoch barrier it stopped at (`None` = ran to
    /// budget exhaustion).
    pub stopped_at: Vec<Option<u64>>,
}

impl AdaptiveOutcome {
    /// Participants never simulated: the unrecruited budget tail plus
    /// mid-run pruned participants.
    pub fn participants_saved(&self) -> u64 {
        self.budget - self.recruited + self.pruned
    }

    /// Canonical rendering of the decision sequence; byte-identical
    /// across shard sizes, thread counts, and chaos seeds.
    pub fn decision_fingerprint(&self) -> String {
        format!("{:?}", self.decisions)
    }
}

/// The stopping rule's half-width for one stimulus: the max of the
/// mean-CI half-width and half the sketch-resolution-aware median
/// interval, both at [`ADAPTIVE_Z`]. `None` until two responses are
/// kept (no variance estimate).
pub fn stop_half_width(d: &StimulusDigest) -> Option<f64> {
    let (mlo, mhi) = d.uplt.mean_ci(ADAPTIVE_Z)?;
    let (qlo, qhi) = d.sketch.quantile_ci(50.0, ADAPTIVE_Z)?;
    Some(((mhi - mlo) / 2.0).max((qhi - qlo) / 2.0))
}

/// Evaluate the stopping rule for one live stimulus at a barrier.
fn should_stop(d: &StimulusDigest, ac: &AdaptiveConfig) -> Option<(StopCause, f64)> {
    let n = d.retained();
    if ac.max_n > 0 && n >= ac.max_n {
        return Some((StopCause::MaxN, stop_half_width(d).unwrap_or(f64::INFINITY)));
    }
    if ac.epsilon > 0.0 && n >= ac.min_n {
        if let Some(hw) = stop_half_width(d) {
            if hw <= ac.epsilon {
                return Some((StopCause::Converged, hw));
            }
        }
    }
    None
}

/// Run a timeline campaign adaptively: up to `budget` participants from
/// `service`, in `ac.epoch`-sized epochs, stopping each stimulus as its
/// confidence half-width reaches `ac.epsilon` (see the module docs for
/// the exact semantics and the determinism argument).
///
/// With an inactive config (`epsilon = 0`, `max_n = 0`) this is
/// byte-identical to [`crate::stream::stream_timeline_campaign`] /
/// [`crate::flat::flat_timeline_campaign`] on the same inputs, digest
/// and counter fingerprint alike.
#[allow(clippy::too_many_arguments)] // mirrors the engine entry points it wraps
pub fn adaptive_timeline_campaign(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    budget: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
) -> AdaptiveOutcome {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.adaptive_timeline");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    match backend {
        AdaptiveBackend::Streaming => {
            let pop = service.population();
            let frames = tl_frames(stimuli, threads);
            let ctx = TlCtx::new(
                stimuli,
                &frames,
                &pop,
                cfg,
                filters,
                seed.derive("recruit"),
                seed.derive("timeline"),
                sc.params,
            );
            drive(stimuli, service, budget, sc, ac, |lo, hi, base, live| {
                stream_tl_epoch(&ctx, lo, hi, threads, shard, base, live)
            })
        }
        AdaptiveBackend::Flat => {
            let ctx = FlatTlCtx::new(stimuli, service, cfg, filters, seed, sc.params, threads);
            drive(stimuli, service, budget, sc, ac, |lo, hi, base, live| {
                flat_tl_epoch(&ctx, lo, hi, threads, shard, base, live)
            })
        }
    }
}

/// The full mutable state of the epoch loop between two barriers — a
/// pure function of (seed, config, processed index range), which is
/// what makes it checkpointable: `crate::checkpoint` serializes
/// exactly this (plus the obs counter totals) and
/// [`drive_resumable`] picks the loop back up from it.
#[derive(Debug, Clone)]
pub(crate) struct DriveState {
    /// Per-stimulus recruitment mask.
    pub(crate) live: Vec<bool>,
    /// Cumulative fold over every processed epoch.
    pub(crate) acc: TlShard,
    /// Gate admissions over `[0, processed)`.
    pub(crate) admitted: u64,
    /// Participant indices processed so far.
    pub(crate) processed: usize,
    /// Epoch barriers evaluated so far.
    pub(crate) epochs: u64,
    /// Stopping decisions, in the order taken.
    pub(crate) decisions: Vec<StopDecision>,
    /// Per stimulus: the epoch barrier it stopped at.
    pub(crate) stopped_at: Vec<Option<u64>>,
}

impl DriveState {
    /// The loop's starting state for `stimuli`.
    pub(crate) fn fresh(stimuli: &[TimelineStimulus], params: &DigestParams) -> DriveState {
        DriveState {
            live: vec![true; stimuli.len()],
            acc: TlShard::new(stimuli, params),
            admitted: 0,
            processed: 0,
            epochs: 0,
            decisions: Vec::new(),
            stopped_at: vec![None; stimuli.len()],
        }
    }
}

/// How an epoch loop ended.
pub(crate) enum DriveEnd {
    /// Ran to its natural end (budget exhausted or everything stopped).
    Complete(Box<AdaptiveOutcome>),
    /// The barrier callback requested an interruption; the state is
    /// exactly what a later [`drive_resumable`] call needs to continue.
    Interrupted(Box<DriveState>),
}

/// The backend-agnostic epoch loop: recruit an epoch, merge its folds
/// in shard order, evaluate the stopping rule at the barrier, repeat.
fn drive<F>(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    budget: usize,
    sc: &StreamConfig,
    ac: &AdaptiveConfig,
    run_epoch: F,
) -> AdaptiveOutcome
where
    F: FnMut(usize, usize, u64, &[bool]) -> (Vec<TlShard>, u64),
{
    match drive_resumable(stimuli, service, budget, sc, ac, None, &mut |_| true, run_epoch) {
        DriveEnd::Complete(outcome) => *outcome,
        DriveEnd::Interrupted(_) => unreachable!("an always-continue barrier never interrupts"),
    }
}

/// [`drive`] with two extra affordances for the checkpoint layer:
/// start from a prior [`DriveState`] instead of scratch, and consult
/// `barrier` after every epoch's stopping evaluation — a `false`
/// return stops the loop and hands the state back as
/// [`DriveEnd::Interrupted`].
///
/// The interrupted→resumed composition is byte-identical to the
/// uninterrupted run because the loop's entire mutable state lives in
/// [`DriveState`] and epochs are pure functions of it: the resumed
/// loop re-enters at exactly the barrier the interrupted one left.
/// The final `ADAPTIVE_PARTICIPANTS_SAVED` bump for the unrecruited
/// budget tail fires only on natural completion, so an interrupted
/// run's counter totals equal the uninterrupted run's totals *at that
/// barrier* (which is what the checkpoint records).
#[allow(clippy::too_many_arguments)] // `drive` plus the two resume affordances
pub(crate) fn drive_resumable<F>(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    budget: usize,
    sc: &StreamConfig,
    ac: &AdaptiveConfig,
    resume: Option<DriveState>,
    barrier: &mut dyn FnMut(&DriveState) -> bool,
    mut run_epoch: F,
) -> DriveEnd
where
    F: FnMut(usize, usize, u64, &[bool]) -> (Vec<TlShard>, u64),
{
    let epoch = ac.epoch.max(1);
    let active = ac.is_active();
    let n_stim = stimuli.len();
    let mut st = resume.unwrap_or_else(|| DriveState::fresh(stimuli, &sc.params));

    while st.processed < budget && st.live.iter().any(|&l| l) {
        let lo = st.processed;
        let hi = (lo + epoch).min(budget);
        let (folds, range_admitted) = run_epoch(lo, hi, st.admitted, &st.live);
        for fold in &folds {
            st.acc.merge_from(fold);
        }
        st.admitted += range_admitted;
        st.processed = hi;
        st.epochs += 1;
        if active {
            eyeorg_obs::metrics::ADAPTIVE_EPOCHS.incr();
            for si in 0..n_stim {
                if !st.live[si] {
                    continue;
                }
                if let Some((cause, half_width)) = should_stop(&st.acc.stimuli[si], ac) {
                    st.live[si] = false;
                    st.stopped_at[si] = Some(st.epochs);
                    eyeorg_obs::metrics::ADAPTIVE_STIMULI_STOPPED.incr();
                    st.decisions.push(StopDecision {
                        epoch: st.epochs,
                        stimulus: si,
                        name: st.acc.stimuli[si].name.clone(),
                        retained: st.acc.stimuli[si].retained(),
                        half_width,
                        cause,
                    });
                }
            }
        }
        if !barrier(&st) {
            return DriveEnd::Interrupted(Box::new(st));
        }
    }
    // The never-recruited budget tail is also a saving (mid-run pruning
    // was already counted shard by shard). Zero when inactive.
    eyeorg_obs::metrics::ADAPTIVE_PARTICIPANTS_SAVED.add((budget - st.processed) as u64);

    let pruned = st.acc.pruned;
    let digest =
        merge_tl_shards(stimuli, service, st.processed, &sc.params, std::slice::from_ref(&st.acc));
    DriveEnd::Complete(Box::new(AdaptiveOutcome {
        digest,
        budget: budget as u64,
        recruited: st.processed as u64,
        pruned,
        epochs: st.epochs,
        decisions: st.decisions,
        stopped_at: st.stopped_at,
    }))
}
