//! Hot-path performance harness (no external benchmark framework).
//!
//! Times the single-thread capture pipeline — simulated TCP event
//! processing, page loads, frame-timeline materialisation, rewind
//! scans, and visual-progress curves — against in-process reference
//! implementations of each optimisation:
//!
//! * **network**: burst batching on vs. the per-segment reference path
//!   (`load_page_reference` / `NetSim::set_burst_batching(false)`);
//! * **video**: incremental delta-driven rewinds and completeness
//!   curves vs. the definitional full-grid scans (`rewind_suggestion`,
//!   render-and-diff per change point).
//!
//! Writes `results/BENCH_hotpath.json` with events/sec, segments/sec,
//! and frames/sec, and **exits non-zero** when any optimised output is
//! not byte-identical to its reference — the optimisations must be
//! invisible. Pass `--smoke` for a down-sized run (CI-friendly).

use std::time::Instant;

use eyeorg_browser::{load_page, load_page_reference, BrowserConfig, LoadTrace};
use eyeorg_metrics::visual_progress_curve;
use eyeorg_net::profile::TlsMode;
use eyeorg_net::sim::{NetEvent, NetSim};
use eyeorg_net::tcp::MSS;
use eyeorg_net::{NetworkProfile, SimDuration, SimTime};
use eyeorg_stats::Seed;
use eyeorg_video::{rewind_suggestion, FrameTimeline, Video};
use eyeorg_workload::{alexa_like, Website};

/// One simulated page worth of objects, round-robined over connections;
/// returns wall seconds, events processed, bytes delivered, and the
/// full observable trace (for the divergence gate).
fn net_stage(
    batching: bool,
    conns: usize,
    objects: &[u64],
    seed: Seed,
) -> (f64, u64, u64, Vec<(SimTime, NetEvent)>) {
    let t0 = Instant::now();
    let mut sim = NetSim::new(NetworkProfile::lossless_test(), seed);
    sim.set_burst_batching(batching);
    let ids: Vec<_> = (0..conns).map(|_| sim.open(SimTime::ZERO, TlsMode::None)).collect();
    let mut next_obj: Vec<usize> = (0..conns).collect();
    let mut expecting = vec![0u64; conns];
    let mut requested = vec![0u64; conns];
    let mut delivered = 0u64;
    let mut trace = Vec::new();
    while let Some((t, ev)) = sim.next_event() {
        trace.push((t, ev));
        match ev {
            NetEvent::Established { conn } => {
                if next_obj[conn.0] < objects.len() {
                    requested[conn.0] += 120;
                    sim.client_send(conn, t, 120);
                }
            }
            NetEvent::RequestDelivered { conn, total_bytes } => {
                if total_bytes == requested[conn.0] {
                    let obj = objects[next_obj[conn.0]];
                    next_obj[conn.0] += conns;
                    expecting[conn.0] += obj;
                    delivered += obj;
                    sim.server_send(conn, t, obj);
                }
            }
            NetEvent::Delivered { conn, total_bytes } => {
                if total_bytes == expecting[conn.0] && next_obj[conn.0] < objects.len() {
                    requested[conn.0] += 120;
                    sim.client_send(conn, t, 120);
                }
            }
        }
    }
    drop(ids);
    (t0.elapsed().as_secs_f64(), sim.events_processed(), delivered, trace)
}

/// The pre-optimisation visual-progress curve: render every change
/// point and diff full grids against the final frame.
fn naive_curve(video: &Video) -> Vec<(SimTime, f64)> {
    let fold = video.trace().fold_y;
    let end = SimTime::from_micros(video.duration().as_micros());
    let mut change_times: Vec<SimTime> = video
        .trace()
        .paints
        .iter()
        .filter(|p| p.time <= end)
        .filter(|p| p.rect.above_fold(fold).is_some())
        .map(|p| p.time)
        .collect();
    change_times.dedup();
    let Some(&last) = change_times.last() else {
        return vec![(SimTime::ZERO, 1.0)];
    };
    let final_frame = video.render_at(last);
    let mut curve = Vec::with_capacity(change_times.len() + 1);
    let blank = video.render_at(SimTime::ZERO);
    curve.push((SimTime::ZERO, 1.0 - blank.diff_fraction(&final_frame)));
    for t in change_times {
        curve.push((t, 1.0 - video.render_at(t).diff_fraction(&final_frame)));
    }
    curve
}

/// Output of one capture-pipeline pass, complete enough that equal
/// fingerprints mean byte-identical pipelines.
struct PipelineOutput {
    secs: f64,
    frames: u64,
    fingerprint: String,
}

/// Run the per-site capture pipeline: load, capture, materialise the
/// frame timeline, answer every rewind query, compute the progress
/// curve. `optimised` selects batched loads + incremental scans;
/// otherwise the per-segment loader and the definitional full-grid
/// implementations run.
fn capture_stage(sites: &[Website], seed: Seed, optimised: bool) -> PipelineOutput {
    let cfg = BrowserConfig::new();
    let loader: fn(&Website, &BrowserConfig, Seed) -> LoadTrace =
        if optimised { load_page } else { load_page_reference };
    let t0 = Instant::now();
    let mut frames = 0u64;
    let mut fingerprint = String::new();
    for (i, site) in sites.iter().enumerate() {
        let trace = loader(site, &cfg, seed.derive_index("load", i as u64));
        let video = Video::capture(trace, 10, SimDuration::from_secs(5));
        let n = video.frame_count();
        frames += n as u64;
        let rewinds: Vec<usize> = if optimised {
            let mut tl = FrameTimeline::of(&video);
            tl.precompute_rewinds();
            (0..n).map(|c| tl.rewind_at(c)).collect()
        } else {
            (0..n).map(|c| rewind_suggestion(&video, c)).collect()
        };
        let curve =
            if optimised { visual_progress_curve(&video) } else { naive_curve(&video) };
        fingerprint.push_str(&format!("{:?};{rewinds:?};{curve:?}\n", video.trace()));
    }
    PipelineOutput { secs: t0.elapsed().as_secs_f64(), frames, fingerprint }
}

fn main() {
    // Instrumentation on: the hot paths are timed with their counters
    // live, so a counter that costs real throughput shows up here.
    eyeorg_obs::enable();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_sites, net_objects, net_conns) = if smoke { (3, 24, 4) } else { (10, 96, 6) };
    let seed = Seed(2016).derive("perf-hotpath");
    let mut divergence = false;

    // --- network stage ---
    let objects: Vec<u64> = (0..net_objects)
        .map(|i| match i % 6 {
            0 => 2_500,
            1 => 14_000,
            2 => 700,
            3 => 40_000,
            4 => 9_000,
            _ => 120_000,
        })
        .collect();
    let (ref_secs, ref_events, _, ref_trace) =
        net_stage(false, net_conns, &objects, seed.derive("net"));
    let (net_secs, net_events, net_bytes, net_trace) =
        net_stage(true, net_conns, &objects, seed.derive("net"));
    if net_trace != ref_trace {
        divergence = true;
        eprintln!("DIVERGENCE: batched NetSim trace differs from per-segment reference");
    }
    let events_per_sec = net_events as f64 / net_secs.max(1e-9);
    let segments = net_bytes.div_ceil(MSS);
    let segments_per_sec = segments as f64 / net_secs.max(1e-9);
    let event_reduction = ref_events as f64 / net_events.max(1) as f64;
    println!(
        "net: {net_events} events in {net_secs:.3}s ({events_per_sec:.0} events/s, \
         {segments_per_sec:.0} segments/s, {event_reduction:.2}x fewer events than reference)"
    );

    // --- capture pipeline stage ---
    let sites = alexa_like(seed.derive("sites"), n_sites);
    let optimised = capture_stage(&sites, seed.derive("cap"), true);
    let reference = capture_stage(&sites, seed.derive("cap"), false);
    if optimised.fingerprint != reference.fingerprint {
        divergence = true;
        eprintln!("DIVERGENCE: optimised capture pipeline differs from reference");
    }
    let frames_per_sec = optimised.frames as f64 / optimised.secs.max(1e-9);
    let capture_speedup = reference.secs / optimised.secs.max(1e-9);
    println!(
        "capture: {} frames in {:.3}s ({frames_per_sec:.0} frames/s); reference {:.3}s \
         => {capture_speedup:.2}x",
        optimised.frames, optimised.secs, reference.secs
    );

    let env = eyeorg_bench::env_metadata_json();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"sites\": {n_sites},\n  {env},\n  \"net\": {{\"conns\": {net_conns}, \"objects\": {net_objects}, \"batched_secs\": {net_secs:.6}, \"reference_secs\": {ref_secs:.6}, \"events_processed\": {net_events}, \"events_processed_reference\": {ref_events}, \"event_reduction\": {event_reduction:.3}, \"events_per_sec\": {events_per_sec:.0}, \"segments_per_sec\": {segments_per_sec:.0}}},\n  \"capture\": {{\"optimised_secs\": {:.6}, \"reference_secs\": {:.6}, \"frames\": {}, \"frames_per_sec\": {frames_per_sec:.0}, \"speedup\": {capture_speedup:.3}}},\n  \"target_speedup\": 2.0,\n  \"target_met\": {},\n  \"identical_to_reference\": {}\n}}\n",
        optimised.secs,
        reference.secs,
        optimised.frames,
        capture_speedup >= 2.0,
        !divergence
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote results/BENCH_hotpath.json");

    if divergence {
        eprintln!("FAIL: optimised hot paths diverged from reference outputs");
        std::process::exit(1);
    }
}
