//! D7 waived: the guard above the indexing rules the panic out.

// lint:entrypoint(untrusted)
pub fn load(bytes: &[u8]) -> u32 {
    if bytes.is_empty() {
        return 0;
    }
    // lint:allow(D7): the is_empty guard above ensures bytes[0] exists
    u32::from(bytes[0])
}
