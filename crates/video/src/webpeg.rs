//! webpeg: the capture orchestrator.
//!
//! §3.2: "For each experiment configuration, we repeat each load five
//! times and use the video with the median onload time." This module
//! wraps the browser + capture pipeline exactly that way: fresh browser
//! state per load (a new seeded loader), repeated loads, median
//! selection.

use eyeorg_browser::{load_page, BrowserConfig, LoadTrace};
use eyeorg_net::SimDuration;
use eyeorg_stats::Seed;
use eyeorg_workload::Website;

use crate::capture::Video;

/// Capture settings for a webpeg run.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// Frames per second of the recording.
    pub fps: u32,
    /// Recording continues this long after onload.
    pub record_after: SimDuration,
    /// Number of repeated loads per configuration.
    pub repeats: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        // The paper records at video rate and repeats each load 5 times.
        CaptureConfig { fps: 10, record_after: SimDuration::from_secs(5), repeats: 5 }
    }
}

/// Perform `repeats` loads of `site` and return every trace, in load
/// order. Each load uses an independent derived seed — fresh browser
/// state, fresh network draws — exactly like webpeg deleting Chrome's
/// local state between loads.
pub fn capture_all(
    site: &Website,
    browser: &BrowserConfig,
    seed: Seed,
    capture: &CaptureConfig,
) -> Vec<LoadTrace> {
    (0..capture.repeats)
        .map(|i| load_page(site, browser, seed.derive_index("load", i as u64)))
        .collect()
}

/// Capture the site and keep the load with the **median onload time**,
/// returning its video.
///
/// # Panics
/// Panics if `repeats` is zero.
pub fn capture_median(
    site: &Website,
    browser: &BrowserConfig,
    seed: Seed,
    capture: &CaptureConfig,
) -> Video {
    assert!(capture.repeats > 0, "at least one load required");
    let traces = capture_all(site, browser, seed, capture);
    let median = select_median_onload(traces);
    Video::capture(median, capture.fps, capture.record_after)
}

/// Pick the trace with the median onload from a set of loads (ties and
/// even counts resolve to the lower middle, as an index-based median of
/// sorted onloads).
fn select_median_onload(mut traces: Vec<LoadTrace>) -> LoadTrace {
    assert!(!traces.is_empty());
    traces.sort_by_key(|t| t.onload.map(|o| o.as_micros()).unwrap_or(u64::MAX));
    let mid = (traces.len() - 1) / 2;
    traces.swap_remove(mid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    #[test]
    fn median_selection_picks_middle_onload() {
        let site = generate_site(Seed(5), 0, SiteClass::Blog);
        let cfg = CaptureConfig { repeats: 5, ..CaptureConfig::default() };
        let traces = capture_all(&site, &BrowserConfig::new(), Seed(7), &cfg);
        assert_eq!(traces.len(), 5);
        let mut onloads: Vec<u64> =
            traces.iter().map(|t| t.onload.unwrap().as_micros()).collect();
        onloads.sort_unstable();
        let video = capture_median(&site, &BrowserConfig::new(), Seed(7), &cfg);
        assert_eq!(video.trace().onload.unwrap().as_micros(), onloads[2]);
    }

    #[test]
    fn repeated_loads_differ_but_are_reproducible() {
        let site = generate_site(Seed(6), 1, SiteClass::News);
        let cfg = CaptureConfig { repeats: 3, ..CaptureConfig::default() };
        let a = capture_all(&site, &BrowserConfig::new(), Seed(8), &cfg);
        let b = capture_all(&site, &BrowserConfig::new(), Seed(8), &cfg);
        assert_eq!(a, b, "same seed, same captures");
        // Within a run, loads see different network draws.
        assert!(
            a[0].onload != a[1].onload || a[1].onload != a[2].onload,
            "independent loads should differ"
        );
    }

    #[test]
    #[should_panic(expected = "at least one load")]
    fn zero_repeats_rejected() {
        let site = generate_site(Seed(5), 0, SiteClass::Blog);
        let cfg = CaptureConfig { repeats: 0, ..CaptureConfig::default() };
        capture_median(&site, &BrowserConfig::new(), Seed(7), &cfg);
    }
}
