//! Sampling distributions for corpus generation.
//!
//! Real-web quantities (object sizes, object counts, think times) are
//! heavy-tailed; HTTP Archive-era measurements are conventionally fit
//! with log-normals. The workspace RNG (`eyeorg_stats::rng`) ships only
//! uniform/Bernoulli/normal primitives, so the transforms live here: a
//! Box–Muller standard normal, log-normal on top of it, and a bounded
//! Pareto for the occasional monster object.

use eyeorg_stats::rng::Rng;

/// One standard-normal draw via the Box–Muller transform.
///
/// Uses both transform outputs' *first* value only — wasting the second
/// costs one extra uniform pair every other call but keeps the sampler
/// stateless, which matters for reproducibility across call sites.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal(rng: &mut Rng, mean: f64, stdev: f64) -> f64 {
    mean + stdev * standard_normal(rng)
}

/// Log-normal parameterised by the *median* and the shape `sigma`
/// (standard deviation of the underlying normal). The median
/// parameterisation is less error-prone than (mu, sigma) when transcribing
/// "typical object is X KB" statements.
pub fn lognormal_median(rng: &mut Rng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    median * (sigma * standard_normal(rng)).exp()
}

/// Log-normal clamped into `[lo, hi]` — corpus quantities (bytes, counts,
/// durations) all have physical bounds and unclamped heavy tails would
/// occasionally produce degenerate sites.
pub fn lognormal_clamped(rng: &mut Rng, median: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    lognormal_median(rng, median, sigma).clamp(lo, hi)
}

/// Bounded Pareto draw on `[lo, hi]` with shape `alpha` (smaller alpha =
/// heavier tail). Used for the rare very large object.
pub fn bounded_pareto(rng: &mut Rng, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    let u: f64 = rng.random_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse-CDF of the bounded Pareto.
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// Integer draw from a clamped log-normal (rounding to nearest).
pub fn lognormal_count(rng: &mut Rng, median: f64, sigma: f64, lo: u64, hi: u64) -> u64 {
    lognormal_clamped(rng, median, sigma, lo as f64, hi as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut r = rng();
        let n = 100_001;
        let mut draws: Vec<f64> = (0..n).map(|_| lognormal_median(&mut r, 40.0, 1.0)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = draws[n / 2];
        assert!((med - 40.0).abs() / 40.0 < 0.03, "median {med}");
    }

    #[test]
    fn clamped_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v = lognormal_clamped(&mut r, 50.0, 2.0, 10.0, 100.0);
            assert!((10.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn bounded_pareto_in_range_and_heavy_tailed() {
        let mut r = rng();
        let draws: Vec<f64> = (0..50_000).map(|_| bounded_pareto(&mut r, 1.2, 1.0, 1000.0)).collect();
        assert!(draws.iter().all(|&v| (1.0..=1000.0).contains(&v)));
        // Heavy tail: the mean should far exceed the median.
        let mut sorted = draws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[draws.len() / 2];
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean}, median {median}");
    }

    #[test]
    fn count_draw_within_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let c = lognormal_count(&mut r, 75.0, 0.6, 5, 300);
            assert!((5..=300).contains(&c));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
