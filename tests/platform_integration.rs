//! Workspace-level integration: the public API as a downstream user
//! consumes it, exercised across every crate boundary at once.

use eyeorg_browser::{load_page, AdBlocker, BrowserConfig};
use eyeorg_core::prelude::*;
use eyeorg_crowd::{CrowdFlower, RecruitmentService, TrustedChannel};
use eyeorg_http::Protocol;
use eyeorg_metrics::{compute_metrics, visual_progress_curve};
use eyeorg_net::NetworkProfile;
use eyeorg_stats::{pearson, Seed};
use eyeorg_video::{encode, CaptureConfig, Video};
use eyeorg_workload::{ad_heavy, alexa_like};

/// The README's promised five-line flow actually works end to end.
#[test]
fn readme_flow() {
    let seed = Seed(1);
    let sites = alexa_like(seed, 4);
    let stimuli = timeline_stimuli(
        &sites,
        &BrowserConfig::new().with_network(NetworkProfile::fttc()),
        &CaptureConfig { repeats: 2, ..CaptureConfig::default() },
        seed,
    );
    let campaign =
        run_timeline_campaign(stimuli, &CrowdFlower, 30, &ExperimentConfig::default(), seed);
    let report = filter_timeline(&campaign, &paper_pipeline());
    let uplt = mean_uplt(&campaign, &report, Some((25.0, 75.0)));
    assert_eq!(uplt.len(), 4);
    assert!(uplt.iter().all(|u| u.is_some()));
}

/// Whole-stack determinism: same seed, bit-identical exports.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let seed = Seed(77);
        let sites = ad_heavy(seed, 3, 1);
        let stimuli = adblock_ab_stimuli(
            &sites,
            &BrowserConfig::new(),
            AdBlocker::Ghostery,
            &CaptureConfig { repeats: 2, ..CaptureConfig::default() },
            seed,
        );
        let campaign =
            run_ab_campaign(stimuli, &CrowdFlower, 20, &ExperimentConfig::default(), seed);
        let report = filter_ab(&campaign, &paper_pipeline());
        to_json(&export_ab("det-test", &campaign, &report))
    };
    assert_eq!(run(), run());
}

/// Metrics computed from a capture agree with the trace's own account.
#[test]
fn metrics_consistent_with_trace() {
    let sites = alexa_like(Seed(5), 3);
    for site in &sites {
        let trace = load_page(site, &BrowserConfig::new(), Seed(6));
        let onload = trace.onload.expect("onload fired");
        let video = Video::capture(trace, 10, eyeorg_net::SimDuration::from_secs(4));
        let m = compute_metrics(&video);
        assert_eq!(m.onload, Some(onload));
        let curve = visual_progress_curve(&video);
        assert!((curve.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
        // The encoded video round-trips its first and last frames.
        let enc = encode(&video);
        assert_eq!(enc.decode_frame(0), video.frame(0));
        let last = video.frame_count() - 1;
        assert_eq!(enc.decode_frame(last), video.frame(last));
    }
}

/// The H1-vs-H2 protocol effect survives the full pipeline: the crowd's
/// aggregate verdict matches the underlying capture difference for sites
/// with a large SpeedIndex delta.
#[test]
fn crowd_verdicts_track_capture_reality() {
    let seed = Seed(31);
    let sites = alexa_like(seed, 6);
    let stimuli = protocol_ab_stimuli(
        &sites,
        &BrowserConfig::new().with_network(NetworkProfile::cable()),
        &CaptureConfig { repeats: 3, ..CaptureConfig::default() },
        seed,
    );
    let campaign =
        run_ab_campaign(stimuli, &CrowdFlower, 80, &ExperimentConfig::default(), seed);
    let report = filter_ab(&campaign, &paper_pipeline());
    let tallies = ab_tallies(&campaign, &report);
    for (i, t) in tallies.iter().enumerate() {
        let si_a = compute_metrics(&campaign.a_videos[i]).speed_index.unwrap().as_secs_f64();
        let si_b = compute_metrics(&campaign.b_videos[i]).speed_index.unwrap().as_secs_f64();
        let delta = si_a - si_b; // positive → B (H2) genuinely faster
        if let Some(score) = t.score() {
            if delta > 1.5 {
                assert!(score > 0.5, "site {i}: SI delta {delta:.2}s but score {score:.2}");
            }
            if delta < -1.5 {
                assert!(score < 0.5, "site {i}: SI delta {delta:.2}s but score {score:.2}");
            }
        }
    }
}

/// Recruitment channels expose the paper's economics through the trait.
#[test]
fn recruitment_trait_objects() {
    let services: Vec<Box<dyn RecruitmentService>> =
        vec![Box::new(CrowdFlower), Box::new(TrustedChannel)];
    for svc in &services {
        let r = svc.recruit(Seed(3), 25);
        assert_eq!(r.participants.len(), 25);
        assert!(r.duration().as_secs_f64() > 0.0);
    }
}

/// Protocol choice is honoured end to end (per-origin fallback included).
#[test]
fn protocol_labels_propagate() {
    let site = &alexa_like(Seed(8), 1)[0];
    let h1 = load_page(site, &BrowserConfig::new().with_protocol(Protocol::Http1), Seed(9));
    let h2 = load_page(site, &BrowserConfig::new().with_protocol(Protocol::Http2), Seed(9));
    assert_eq!(h1.protocol, "h1");
    assert_eq!(h2.protocol, "h2");
    // HARs carry per-resource data for everything fetched.
    let har = eyeorg_browser::to_har(&h2, site);
    assert!(!har.log.entries.is_empty());
}

/// Correlation machinery sanity on real campaign output: crowd UPLT must
/// positively correlate with onload across sites (the weakest version of
/// Fig. 7's finding, at miniature scale).
#[test]
fn uplt_onload_correlation_positive() {
    let seed = Seed(60);
    let sites = alexa_like(seed, 8);
    let stimuli = timeline_stimuli(
        &sites,
        &BrowserConfig::new().with_network(NetworkProfile::fttc()),
        &CaptureConfig { repeats: 2, ..CaptureConfig::default() },
        seed,
    );
    let campaign =
        run_timeline_campaign(stimuli, &CrowdFlower, 80, &ExperimentConfig::default(), seed);
    let report = filter_timeline(&campaign, &paper_pipeline());
    let uplt: Vec<f64> = mean_uplt(&campaign, &report, Some((25.0, 75.0)))
        .into_iter()
        .flatten()
        .collect();
    let onload: Vec<f64> = campaign
        .videos
        .iter()
        .map(|v| v.trace().onload.expect("onload").as_secs_f64())
        .collect();
    assert_eq!(uplt.len(), onload.len());
    let r = pearson(&onload, &uplt).expect("correlation defined");
    assert!(r > 0.3, "crowd UPLT should track onload: r = {r:.2}");
}
