//! TCP sender/receiver state machines.
//!
//! The protocol comparison at the centre of the paper's second campaign
//! (HTTP/1.1 vs HTTP/2, Fig. 8a/8b) is, at the transport level, a
//! comparison between *six short parallel congestion windows* and *one
//! long shared one*. Getting that right requires an actual congestion
//! controller, not a fixed-latency pipe, so this module implements a
//! Reno/NewReno-style sender:
//!
//! * slow start from a 10-segment initial window (RFC 6928, matching the
//!   Chrome/Linux stacks webpeg recorded through),
//! * congestion avoidance with the standard `MSS²/cwnd` per-ACK growth,
//! * fast retransmit on three duplicate ACKs with NewReno partial-ACK
//!   retransmission (no SACK),
//! * retransmission timeouts with exponential backoff and Karn-corrected
//!   RTT estimation (RFC 6298 smoothing).
//!
//! The structures here are *pure state machines*: they decide what to send
//! and how to react to ACKs, but performing the sends (and experiencing
//! loss and queueing) is the job of [`crate::sim::NetSim`]. This split
//! keeps the transport logic unit-testable without a simulator.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Maximum segment size in payload bytes. 1460 = 1500-byte Ethernet MTU
/// minus 40 bytes of IPv4+TCP headers.
pub const MSS: u64 = 1460;

/// Initial congestion window, in segments (RFC 6928).
pub const INITIAL_WINDOW_SEGMENTS: u64 = 10;

/// Bytes of L3/L4 header accounted per segment on the wire.
pub const HEADER_BYTES: u64 = 40;

/// Duplicate-ACK threshold for fast retransmit.
pub const DUPACK_THRESHOLD: u32 = 3;

/// Lower clamp on the retransmission timeout. Real stacks use 200 ms–1 s;
/// we use 200 ms so RTO behaviour is visible on simulated broadband RTTs.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Upper clamp on the retransmission timeout.
pub const MAX_RTO: SimDuration = SimDuration::from_secs(60);

/// Initial RTO before any RTT sample exists (RFC 6298 says 1 s).
pub const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

/// A transmission instruction produced by [`TcpSender::next_segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentToSend {
    /// First byte offset (inclusive).
    pub start: u64,
    /// One past the last byte offset.
    pub end: u64,
    /// Whether this is a retransmission.
    pub retransmission: bool,
}

impl SegmentToSend {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the segment carries no payload (never produced in practice).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Bytes this segment occupies on the wire, including headers.
    pub fn wire_bytes(&self) -> u64 {
        self.len() + HEADER_BYTES
    }
}

/// What an ACK caused the sender to do, reported for tracing/tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// The ACK advanced `snd_una` in the normal course of things.
    Advanced,
    /// A duplicate ACK that did not yet trigger recovery.
    Duplicate,
    /// The third duplicate ACK: fast retransmit has been queued.
    FastRetransmit,
    /// A partial ACK during recovery: the next hole has been queued for
    /// retransmission (NewReno).
    PartialAck,
    /// The ACK completed recovery.
    RecoveryComplete,
    /// The ACK was stale (below `snd_una` with no outstanding data).
    Ignored,
}

/// Reno/NewReno congestion-controlled sender over an abstract byte stream.
#[derive(Debug, Clone)]
pub struct TcpSender {
    mss: u64,
    /// Congestion window in bytes. Kept as f64 so congestion-avoidance
    /// growth of MSS²/cwnd per ACK accumulates smoothly.
    cwnd: f64,
    ssthresh: f64,
    /// Lowest unacknowledged byte.
    snd_una: u64,
    /// Next fresh byte to transmit.
    snd_nxt: u64,
    /// Total bytes the application has made available to send.
    app_limit: u64,
    dup_acks: u32,
    /// `Some(recovery_point)` while in loss recovery; recovery ends when
    /// `snd_una` passes this.
    recovery: Option<u64>,
    /// Active retransmission range `[cursor, end)`; segments the SACK
    /// scoreboard covers are skipped, so only genuine holes are re-sent.
    rtx: Option<(u64, u64)>,
    /// SACK scoreboard: the union of every advertised block (RFC 2018
    /// carries at most 3 blocks per ACK, so the sender accumulates them),
    /// pruned as the cumulative point advances.
    sacked: BTreeMap<u64, u64>,
    /// ACK-clocked retransmission credit (RFC 6675's pipe control,
    /// simplified): each returning ACK during recovery licenses one
    /// retransmission, so recovery drains into the queue at the rate the
    /// queue empties instead of re-flooding it.
    rtx_credit: u64,
    /// Dupacks since the recovery cursor last moved; a pile-up means the
    /// hole's own retransmission was lost, and the cursor rewinds (the
    /// job RACK does in modern stacks) instead of waiting out an RTO.
    dupacks_since_progress: u32,
    /// Whether the most recent `update_sack` carried new information.
    last_sack_new: bool,
    // --- RTT estimation (RFC 6298) ---
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_backoff: u32,
    /// Send times of fresh segments still awaiting acknowledgement:
    /// `(seq_end, sent_at, rtx_epoch_at_send)`. Sampling every segment
    /// (rather than one probe per RTT) lets the RTT estimator see the
    /// queueing built *within* a burst — which is what HyStart needs.
    send_times: std::collections::VecDeque<(u64, SimTime, u64)>,
    /// Incremented on every retransmission; samples from older epochs are
    /// ambiguous (Karn) and skipped.
    rtx_epoch: u64,
    /// Smallest RTT sample seen (HyStart's baseline).
    min_rtt: Option<SimDuration>,
    // --- counters ---
    segments_sent: u64,
    retransmissions: u64,
    timeouts: u64,
}

impl TcpSender {
    /// A fresh sender with an empty send buffer.
    pub fn new() -> TcpSender {
        TcpSender {
            mss: MSS,
            cwnd: (INITIAL_WINDOW_SEGMENTS * MSS) as f64,
            ssthresh: f64::INFINITY,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            dup_acks: 0,
            recovery: None,
            rtx: None,
            sacked: BTreeMap::new(),
            rtx_credit: 0,
            dupacks_since_progress: 0,
            last_sack_new: false,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: INITIAL_RTO,
            rto_backoff: 0,
            send_times: std::collections::VecDeque::new(),
            rtx_epoch: 0,
            min_rtt: None,
            segments_sent: 0,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    /// Make `bytes` more application data available for transmission.
    pub fn app_write(&mut self, bytes: u64) {
        self.app_limit += bytes;
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Whether all written application data has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.app_limit
    }

    /// Whether the sender is *application-limited*: everything the
    /// application has written is already on the wire, so absent a
    /// retransmission the next [`TcpSender::next_segment`] returns `None`.
    pub(crate) fn app_limited(&self) -> bool {
        self.snd_nxt >= self.app_limit
    }

    /// Whether the send path is in its clean fast-path state: no recovery
    /// episode, no pending retransmission cursor, no SACKed holes, and no
    /// duplicate-ACK count. This is the state a fully-acked in-order
    /// exchange leaves behind; burst batching in `NetSim` requires it
    /// before deferring ACK processing.
    pub(crate) fn window_quiescent(&self) -> bool {
        self.recovery.is_none()
            && self.rtx.is_none()
            && self.sacked.is_empty()
            && self.dup_acks == 0
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current retransmission timeout, including backoff.
    pub fn current_rto(&self) -> SimDuration {
        let backed_off = self.rto.saturating_mul(1u32 << self.rto_backoff.min(16));
        backed_off.min(MAX_RTO).max(MIN_RTO)
    }

    /// Total segments handed to the network (including retransmissions).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Retransmitted segments (fast retransmit + RTO).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// RTO events fired.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// The next segment to put on the wire, if the window and send buffer
    /// allow one. The caller must then call [`TcpSender::mark_sent`].
    ///
    /// Retransmissions take priority over fresh data and are exempt from
    /// the window check (the standard loss-recovery behaviour — the data
    /// they cover is already counted in flight).
    pub fn next_segment(&self) -> Option<SegmentToSend> {
        if let Some((mut cursor, mut end)) = self.rtx {
            // Only data *below* SACKed bytes is presumed lost (RFC 6675's
            // IsLost); anything above the highest SACK is still in
            // flight. With an empty scoreboard (RTO path) the whole
            // range is fair game — that is go-back-N.
            if let Some(&highest) = self.sacked.values().max() {
                end = end.min(highest);
            }
            // Skip everything the receiver has SACKed — only holes go out.
            while cursor < end {
                match self.sack_skip_past(cursor) {
                    Some(e) => cursor = e,
                    None => break,
                }
            }
            if cursor < end {
                // ACK-clocked: each retransmission needs a credit, and the
                // burst stays window-limited past the cumulative point.
                if self.rtx_credit > 0
                    && cursor.saturating_sub(self.snd_una) < self.cwnd as u64
                {
                    let mut seg_end = (cursor + self.mss).min(end);
                    if let Some(s) = self.sack_next_block_start(cursor) {
                        seg_end = seg_end.min(s);
                    }
                    return Some(SegmentToSend { start: cursor, end: seg_end, retransmission: true });
                }
                return None;
            }
        }
        if self.snd_nxt >= self.app_limit {
            return None;
        }
        // Pipe estimate (RFC 6675): SACKed bytes have left the network,
        // so new data may flow during recovery instead of idling the
        // link for a full queue-drain while retransmissions trickle.
        let sacked: u64 = self
            .sacked
            .iter()
            .map(|(&s, &e)| e.min(self.snd_nxt).saturating_sub(s.max(self.snd_una)))
            .sum();
        let pipe = self.in_flight().saturating_sub(sacked);
        if pipe + 1 > self.cwnd as u64 {
            return None;
        }
        // Allow the segment if at least one byte fits; real stacks send a
        // full segment once any window opens (we avoid silly-window logic
        // because the receiver never shrinks its window in this model).
        let end = (self.snd_nxt + self.mss).min(self.app_limit);
        Some(SegmentToSend { start: self.snd_nxt, end, retransmission: false })
    }

    /// Record that `seg` was handed to the network at `now`.
    pub fn mark_sent(&mut self, seg: SegmentToSend, now: SimTime) {
        self.segments_sent += 1;
        if seg.retransmission {
            self.retransmissions += 1;
            self.rtx_credit = self.rtx_credit.saturating_sub(1);
            if let Some((cursor, end)) = self.rtx {
                debug_assert!(seg.start >= cursor, "retransmissions walk the range");
                self.rtx = Some((seg.end.max(cursor), end));
            }
            self.rtx_epoch += 1;
        } else {
            debug_assert_eq!(seg.start, self.snd_nxt, "fresh data must be in order");
            self.snd_nxt = seg.end;
            self.send_times.push_back((seg.end, now, self.rtx_epoch));
        }
    }

    /// Merge the SACK blocks carried on an incoming ACK into the
    /// scoreboard (call before [`TcpSender::on_ack`]). Records whether
    /// the ACK carried any *new* information — RFC 6675 only treats an
    /// ACK as a duplicate worth reacting to when it does (acks of
    /// spuriously retransmitted data advertise nothing new and must not
    /// feed back into more retransmission).
    pub fn update_sack(&mut self, sack: SackBlocks) {
        let mut new_info = false;
        for &(start, end) in sack.as_slice() {
            new_info |= self.insert_sacked(start, end);
        }
        self.last_sack_new = new_info;
    }

    /// Insert a range; returns whether any byte of it was new.
    fn insert_sacked(&mut self, mut start: u64, mut end: u64) -> bool {
        // Merge with overlapping/adjacent scoreboard entries.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|&(&s, &e)| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        let mut covered = 0u64;
        let span = end - start;
        for s in overlapping {
            // lint:allow(D4): the key came from the overlapping scan of this same map
            let e = self.sacked.remove(&s).expect("key just observed");
            covered += e.min(end).saturating_sub(s.max(start));
            start = start.min(s);
            end = end.max(e);
        }
        self.sacked.insert(start, end);
        covered < span
    }

    fn prune_sacked(&mut self) {
        let una = self.snd_una;
        self.sacked.retain(|_, e| *e > una);
    }

    /// Scoreboard query: the end of the sacked range covering `seq`.
    fn sack_skip_past(&self, seq: u64) -> Option<u64> {
        self.sacked
            .range(..=seq)
            .next_back()
            .filter(|&(&s, &e)| s <= seq && seq < e)
            .map(|(_, &e)| e)
    }

    fn sack_next_block_start(&self, seq: u64) -> Option<u64> {
        self.sacked.range(seq + 1..).next().map(|(&s, _)| s)
    }

    /// Process a cumulative ACK for all bytes `< ack`.
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> AckOutcome {
        if ack > self.snd_una {
            // --- new data acknowledged ---
            let delta = ack - self.snd_una;
            self.snd_una = ack;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            self.prune_sacked();
            self.sample_rtt(ack, now);

            if let Some(recovery_point) = self.recovery {
                if ack >= recovery_point {
                    // Recovery complete; deflate to ssthresh.
                    self.recovery = None;
                    self.rtx = None;
                    self.rtx_credit = 0;
                    self.cwnd = self.ssthresh;
                    return AckOutcome::RecoveryComplete;
                }
                // Partial ACK: the cumulative point advanced into the
                // range; skip anything now acknowledged and keep walking.
                // The advance means segments left the network: grant
                // proportional retransmission credit.
                if let Some((cursor, end)) = self.rtx {
                    self.rtx = Some((cursor.max(self.snd_una), end));
                }
                self.rtx_credit += (delta / self.mss).max(1);
                self.dupacks_since_progress = 0;
                return AckOutcome::PartialAck;
            }

            // Window growth.
            if self.cwnd < self.ssthresh {
                self.cwnd += self.mss as f64; // slow start: +1 MSS per ACK
            } else {
                self.cwnd += (self.mss * self.mss) as f64 / self.cwnd; // CA
            }
            return AckOutcome::Advanced;
        }

        // Duplicate ACK only counts when data is outstanding AND it told
        // us something new (RFC 6675's DupAck definition); acks of
        // duplicate data carry no new SACK ranges and are inert.
        if ack == self.snd_una && self.in_flight() > 0 {
            if !self.last_sack_new && !self.sacked.is_empty() {
                return AckOutcome::Ignored;
            }
            if self.recovery.is_some() {
                // Each dupack signals a segment left the network: one
                // more retransmission may enter (pipe control).
                self.rtx_credit += 1;
                self.dupacks_since_progress += 1;
                if self.dupacks_since_progress >= 16 {
                    // Rescue: the hole retransmission itself was lost.
                    self.dupacks_since_progress = 0;
                    if let Some((_, end)) = self.rtx {
                        self.rtx = Some((self.snd_una, end));
                    }
                }
                return AckOutcome::Duplicate;
            }
            self.dup_acks += 1;
            if self.dup_acks == DUPACK_THRESHOLD {
                self.enter_fast_recovery();
                return AckOutcome::FastRetransmit;
            }
            return AckOutcome::Duplicate;
        }
        AckOutcome::Ignored
    }

    /// A retransmission timer fired at `now`. Collapses the window to one
    /// segment and queues the first unacked byte for retransmission.
    /// Returns `false` (and does nothing) if no data is outstanding.
    pub fn on_rto(&mut self) -> bool {
        if self.in_flight() == 0 {
            return false;
        }
        self.timeouts += 1;
        self.ssthresh = (self.in_flight() as f64 / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.mss as f64;
        self.dup_acks = 0;
        // Go-back-N from the cumulative point, ACK-clocked and
        // window-limited (cwnd grows back through slow start).
        self.recovery = Some(self.snd_nxt);
        self.rtx = Some((self.snd_una, self.snd_nxt));
        self.rtx_credit = 1;
        self.rto_backoff = (self.rto_backoff + 1).min(16);
        self.rtx_epoch += 1;
        true
    }

    fn enter_fast_recovery(&mut self) {
        self.ssthresh = (self.in_flight() as f64 / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.ssthresh;
        self.recovery = Some(self.snd_nxt);
        self.rtx = Some((self.snd_una, self.snd_nxt));
        // The three dupacks that got us here are three departures.
        self.rtx_credit = 3;
    }

    fn sample_rtt(&mut self, ack: u64, now: SimTime) {
        // Pop everything this cumulative ACK covers; the *last* covered
        // segment carries the freshest (tail-of-burst) timing.
        let mut newest: Option<(SimTime, u64)> = None;
        while let Some(&(seq_end, sent_at, epoch)) = self.send_times.front() {
            if seq_end > ack {
                break;
            }
            self.send_times.pop_front();
            newest = Some((sent_at, epoch));
        }
        let Some((sent_at, epoch)) = newest else { return };
        if epoch != self.rtx_epoch {
            return; // Karn: a retransmission happened since; ambiguous
        }
        let sample = now.since(sent_at);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) if m <= sample => m,
            _ => sample,
        });
        // HyStart-style slow-start exit (what 2016-era CUBIC servers ran):
        // once queueing delay shows up in the RTT, stop doubling — this is
        // what saves a single large flow from the overshoot collapse that
        // Reno-with-fixed-ssthresh suffers on every bulk transfer.
        if self.cwnd < self.ssthresh {
            // The probe rides the tail of each burst and therefore sees
            // the burst's own serialisation as queueing; demand a
            // substantial standing queue (half the base RTT, ≥8 ms)
            // before exiting, or slow start stops far below the BDP.
            // lint:allow(D4): min_rtt was set from this very sample a few lines above
            let base = self.min_rtt.expect("just set").as_micros();
            let threshold = base + (base / 2).max(8_000);
            if sample.as_micros() > threshold {
                self.ssthresh = self.cwnd;
            }
        }
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = SimDuration::from_micros(sample.as_micros() / 2);
            }
            Some(srtt) => {
                let err = srtt.as_micros().abs_diff(sample.as_micros());
                self.rttvar =
                    SimDuration::from_micros((3 * self.rttvar.as_micros() + err) / 4);
                self.srtt = Some(SimDuration::from_micros(
                    (7 * srtt.as_micros() + sample.as_micros()) / 8,
                ));
            }
        }
        let rto = SimDuration::from_micros(
            // lint:allow(D4): srtt was set in the branch above before the RTO is computed
            self.srtt.expect("just set").as_micros() + 4 * self.rttvar.as_micros().max(1_000),
        );
        self.rto = rto.max(MIN_RTO).min(MAX_RTO);
    }

    /// Smoothed RTT estimate, if a valid sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

impl Default for TcpSender {
    fn default() -> Self {
        Self::new()
    }
}

/// Up to three SACK blocks carried on an ACK (RFC 2018 allows 3–4; three
/// suffice to cover drop-tail burst holes in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(u64, u64); 3],
    len: u8,
}

impl SackBlocks {
    /// Build from the receiver's earliest out-of-order ranges.
    pub fn from_ranges<'a>(ranges: impl Iterator<Item = (&'a u64, &'a u64)>) -> SackBlocks {
        let mut out = SackBlocks::default();
        for (&s, &e) in ranges.take(3) {
            out.blocks[out.len as usize] = (s, e);
            out.len += 1;
        }
        out
    }

    /// The blocks as a slice.
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.blocks[..self.len as usize]
    }

    /// Whether `seq` falls inside any block.
    pub fn covers(&self, seq: u64) -> bool {
        self.as_slice().iter().any(|&(s, e)| s <= seq && seq < e)
    }

    /// End of the block covering `seq`, if any.
    pub fn skip_past(&self, seq: u64) -> Option<u64> {
        self.as_slice().iter().find(|&&(s, e)| s <= seq && seq < e).map(|&(_, e)| e)
    }

    /// Start of the first block beginning strictly after `seq`, if any.
    pub fn next_block_start(&self, seq: u64) -> Option<u64> {
        self.as_slice().iter().filter(|&&(s, _)| s > seq).map(|&(s, _)| s).min()
    }
}

/// Receiver side: cumulative ACK generation and in-order delivery
/// accounting, with an out-of-order reassembly buffer whose ranges are
/// advertised back to the sender as SACK blocks.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    /// Next byte expected in order.
    rcv_nxt: u64,
    /// Out-of-order ranges keyed by start offset (non-overlapping,
    /// non-adjacent by construction).
    ooo: BTreeMap<u64, u64>,
    /// Rotation cursor so successive ACKs advertise *different* ranges —
    /// three blocks per ACK only cover a burst-loss buffer if they
    /// rotate (what real stacks do).
    sack_rotate: usize,
}

/// Result of receiving one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveOutcome {
    /// Cumulative ACK to send (next expected byte).
    pub ack: u64,
    /// Bytes newly available to the application, in order, because of
    /// this segment (0 for out-of-order or duplicate segments).
    pub newly_delivered: u64,
    /// SACK blocks advertising the reassembly buffer's holes' far sides.
    pub sack: SackBlocks,
}

impl TcpReceiver {
    /// A fresh receiver expecting byte 0.
    pub fn new() -> TcpReceiver {
        TcpReceiver::default()
    }

    /// Total in-order bytes delivered to the application so far.
    pub fn delivered(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes held in the reassembly buffer (received out of order).
    pub fn buffered(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }

    /// Accept the segment `[start, end)`.
    pub fn on_segment(&mut self, start: u64, end: u64) -> ReceiveOutcome {
        assert!(start <= end, "segment range inverted");
        let before = self.rcv_nxt;
        if end <= self.rcv_nxt {
            // Entirely duplicate.
            return ReceiveOutcome {
                ack: self.rcv_nxt,
                newly_delivered: 0,
                sack: SackBlocks::from_ranges(self.ooo.iter()),
            };
        }
        let start = start.max(self.rcv_nxt);
        if start > self.rcv_nxt {
            // Out of order: stash and emit a duplicate ACK with SACK
            // info — the block containing this segment first (RFC 2018),
            // then two more ranges chosen by rotation so that a long
            // burst's whole buffer map reaches the sender over a few ACKs.
            self.insert_ooo(start, end);
            let recent = self
                .ooo
                .range(..=start)
                .next_back()
                .map(|(&s, &e)| (s, e))
                // lint:allow(D4): the insert above guarantees a stored range starting at or before start
                .expect("range containing the segment exists");
            let others: Vec<(u64, u64)> =
                self.ooo.iter().map(|(&s, &e)| (s, e)).filter(|r| *r != recent).collect();
            let mut blocks = vec![recent];
            if !others.is_empty() {
                for k in 0..2usize.min(others.len()) {
                    blocks.push(others[(self.sack_rotate + k) % others.len()]);
                }
                self.sack_rotate = (self.sack_rotate + 2) % others.len();
            }
            return ReceiveOutcome {
                ack: self.rcv_nxt,
                newly_delivered: 0,
                sack: SackBlocks::from_ranges(blocks.iter().map(|(s, e)| (s, e))),
            };
        }
        // In order: advance, then drain any contiguous buffered ranges.
        self.rcv_nxt = end;
        // Find buffered ranges that begin at or before rcv_nxt.
        while let Some((&s, &e)) = self.ooo.range(..=self.rcv_nxt).next_back() {
            if e <= self.rcv_nxt {
                self.ooo.remove(&s);
                continue;
            }
            if s <= self.rcv_nxt {
                self.rcv_nxt = e;
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
        ReceiveOutcome {
            ack: self.rcv_nxt,
            newly_delivered: self.rcv_nxt - before,
            sack: SackBlocks::from_ranges(self.ooo.iter()),
        }
    }

    fn insert_ooo(&mut self, mut start: u64, mut end: u64) {
        // Merge with any overlapping or adjacent existing ranges.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|&(&s, &e)| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            // lint:allow(D4): the key came from the overlapping scan of this same map
            let e = self.ooo.remove(&s).expect("key just observed");
            start = start.min(s);
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_window(s: &mut TcpSender, now: SimTime) -> Vec<SegmentToSend> {
        let mut out = Vec::new();
        while let Some(seg) = s.next_segment() {
            s.mark_sent(seg, now);
            out.push(seg);
        }
        out
    }

    #[test]
    fn initial_window_is_ten_segments() {
        let mut s = TcpSender::new();
        s.app_write(1_000_000);
        let segs = drain_window(&mut s, SimTime::ZERO);
        assert_eq!(segs.len(), 10);
        assert_eq!(s.in_flight(), 10 * MSS);
        assert!(segs.iter().all(|g| g.len() == MSS && !g.retransmission));
    }

    #[test]
    fn short_flow_sends_partial_final_segment() {
        let mut s = TcpSender::new();
        s.app_write(2000);
        let segs = drain_window(&mut s, SimTime::ZERO);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), MSS);
        assert_eq!(segs[1].len(), 2000 - MSS);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new();
        s.app_write(10_000_000);
        let t0 = SimTime::ZERO;
        let w0 = drain_window(&mut s, t0).len();
        // ACK the whole first window one RTT later.
        let t1 = SimTime::from_millis(50);
        for i in 1..=w0 as u64 {
            s.on_ack(i * MSS, t1);
        }
        let w1 = drain_window(&mut s, t1).len();
        // cwnd grew by 1 MSS per ACK → window doubled.
        assert_eq!(w1, 2 * w0);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut s = TcpSender::new();
        s.app_write(100_000_000);
        // Force CA by setting up a recovery and completing it.
        let t = SimTime::ZERO;
        drain_window(&mut s, t);
        // 3 dupacks → fast retransmit → recovery.
        s.on_ack(0, t);
        s.on_ack(0, t);
        assert_eq!(s.on_ack(0, t), AckOutcome::FastRetransmit);
        let rec_point = s.in_flight(); // == snd_nxt
        assert_eq!(s.on_ack(rec_point, SimTime::from_millis(100)), AckOutcome::RecoveryComplete);
        let cwnd_after = s.cwnd_bytes();
        // One full window of ACKs in CA grows cwnd by ~1 MSS total.
        let acks = cwnd_after / MSS;
        let base = s.snd_una;
        // Send fresh data so ACKs aren't duplicates.
        drain_window(&mut s, SimTime::from_millis(100));
        for i in 1..=acks {
            s.on_ack(base + i * MSS, SimTime::from_millis(150));
        }
        let grown = s.cwnd_bytes();
        let delta = grown as i64 - cwnd_after as i64;
        assert!((delta - MSS as i64).abs() <= MSS as i64 / 4, "CA growth {delta}");
    }

    #[test]
    fn fast_retransmit_after_three_dupacks() {
        let mut s = TcpSender::new();
        s.app_write(100_000);
        drain_window(&mut s, SimTime::ZERO);
        let flight_before = s.in_flight();
        assert_eq!(s.on_ack(0, SimTime::ZERO), AckOutcome::Duplicate);
        assert_eq!(s.on_ack(0, SimTime::ZERO), AckOutcome::Duplicate);
        assert_eq!(s.on_ack(0, SimTime::ZERO), AckOutcome::FastRetransmit);
        // Window halved (>= 2 MSS floor).
        assert_eq!(s.cwnd_bytes(), flight_before / 2);
        // The queued retransmission covers the first segment.
        let seg = s.next_segment().expect("retransmission pending");
        assert!(seg.retransmission);
        assert_eq!(seg.start, 0);
        assert_eq!(seg.len(), MSS);
        s.mark_sent(seg, SimTime::ZERO);
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = TcpSender::new();
        s.app_write(100_000);
        drain_window(&mut s, SimTime::ZERO);
        for _ in 0..3 {
            s.on_ack(0, SimTime::ZERO);
        }
        let seg = s.next_segment().unwrap();
        s.mark_sent(seg, SimTime::ZERO);
        // Partial ACK: only the first segment's worth arrives.
        assert_eq!(s.on_ack(MSS, SimTime::from_millis(60)), AckOutcome::PartialAck);
        let seg2 = s.next_segment().unwrap();
        assert!(seg2.retransmission);
        assert_eq!(seg2.start, MSS);
    }

    #[test]
    fn rto_collapses_window() {
        let mut s = TcpSender::new();
        s.app_write(100_000);
        drain_window(&mut s, SimTime::ZERO);
        assert!(s.on_rto());
        assert_eq!(s.cwnd_bytes(), MSS);
        assert_eq!(s.timeouts(), 1);
        let seg = s.next_segment().unwrap();
        assert!(seg.retransmission);
        assert_eq!(seg.start, 0);
        // Backoff doubles the effective RTO.
        let rto1 = s.current_rto();
        s.mark_sent(seg, SimTime::ZERO);
        s.on_rto();
        assert_eq!(s.current_rto().as_micros(), (rto1.as_micros() * 2).min(MAX_RTO.as_micros()));
    }

    #[test]
    fn rto_without_outstanding_data_is_noop() {
        let mut s = TcpSender::new();
        assert!(!s.on_rto());
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let mut s = TcpSender::new();
        s.app_write(MSS);
        let seg = s.next_segment().unwrap();
        s.mark_sent(seg, SimTime::ZERO);
        s.on_ack(MSS, SimTime::from_millis(80));
        let srtt = s.srtt().expect("sample taken");
        assert_eq!(srtt, SimDuration::from_millis(80));
        // RTO = srtt + 4*max(rttvar,1ms) = 80 + 4*40 = 240 ms.
        assert_eq!(s.current_rto(), SimDuration::from_millis(240));
    }

    #[test]
    fn karn_poisons_rtt_after_retransmission() {
        let mut s = TcpSender::new();
        s.app_write(10 * MSS);
        drain_window(&mut s, SimTime::ZERO);
        s.on_rto();
        let seg = s.next_segment().unwrap();
        s.mark_sent(seg, SimTime::from_millis(500));
        // The ACK covers the probe but the sample is ambiguous → no srtt.
        s.on_ack(MSS, SimTime::from_millis(600));
        assert!(s.srtt().is_none());
    }

    #[test]
    fn all_acked_tracks_completion() {
        let mut s = TcpSender::new();
        s.app_write(3000);
        assert!(!s.all_acked());
        drain_window(&mut s, SimTime::ZERO);
        s.on_ack(3000, SimTime::from_millis(10));
        assert!(s.all_acked());
    }

    // ----- receiver -----

    #[test]
    fn receiver_in_order_delivery() {
        let mut r = TcpReceiver::new();
        let o = r.on_segment(0, 1460);
        assert_eq!((o.ack, o.newly_delivered), (1460, 1460));
        assert!(o.sack.as_slice().is_empty());
        let o = r.on_segment(1460, 2000);
        assert_eq!((o.ack, o.newly_delivered), (2000, 540));
        assert_eq!(r.delivered(), 2000);
    }

    #[test]
    fn receiver_out_of_order_buffers_and_drains() {
        let mut r = TcpReceiver::new();
        // Segment 2 arrives first: dup-ACK for 0, nothing delivered.
        let o = r.on_segment(1460, 2920);
        assert_eq!((o.ack, o.newly_delivered), (0, 0));
        assert_eq!(o.sack.as_slice(), &[(1460, 2920)], "dup-ack advertises the buffered range");
        assert_eq!(r.buffered(), 1460);
        // Hole fills: both segments deliver at once.
        let o = r.on_segment(0, 1460);
        assert_eq!((o.ack, o.newly_delivered), (2920, 2920));
        assert!(o.sack.as_slice().is_empty());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn receiver_ignores_duplicates() {
        let mut r = TcpReceiver::new();
        r.on_segment(0, 1460);
        let o = r.on_segment(0, 1460);
        assert_eq!((o.ack, o.newly_delivered), (1460, 0));
        // Partial overlap delivers only the new part.
        let o = r.on_segment(1000, 2000);
        assert_eq!((o.ack, o.newly_delivered), (2000, 540));
    }

    #[test]
    fn receiver_merges_ooo_ranges() {
        let mut r = TcpReceiver::new();
        r.on_segment(2920, 4380); // third segment
        r.on_segment(1460, 2920); // second segment — adjacent, must merge
        assert_eq!(r.buffered(), 2920);
        let o = r.on_segment(0, 1460);
        assert_eq!(o.ack, 4380);
        assert_eq!(o.newly_delivered, 4380);
    }

    #[test]
    fn receiver_multiple_holes() {
        let mut r = TcpReceiver::new();
        r.on_segment(1460, 2920);
        r.on_segment(4380, 5840);
        assert_eq!(r.buffered(), 2920);
        let o = r.on_segment(0, 1460);
        // Only the first hole closes; the second range stays buffered.
        assert_eq!(o.ack, 2920);
        assert_eq!(r.buffered(), 1460);
        let o = r.on_segment(2920, 4380);
        assert_eq!(o.ack, 5840);
        assert_eq!(r.buffered(), 0);
    }
}
