//! Hard rules: the gates participants pass *before* any response counts.
//!
//! §3.3's first validation layer. Two of the hard rules are structural in
//! this codebase (every A/B answer is one of Left/Right/NoDifference by
//! type; a timeline response is always a frame on the slider), so what
//! remains to model is the **humanness gate**: "we also use Google's
//! 'I'm not a robot' service to verify 'humanness' before participants
//! take tests." Human participants pass it essentially always; the
//! payment-farming scripts in the paid pool almost never do — which is
//! why the *after-the-fact* filters of §4.3 only ever see human
//! pathologies (sloppiness, distraction), not automation.

use eyeorg_crowd::{Participant, ParticipantClass, Persona};
use eyeorg_stats::rng::Rng;

/// Pass probability of the humanness check for a real person (misfires
/// are rare but exist: broken challenges, accessibility issues).
pub const HUMAN_PASS_RATE: f64 = 0.995;

/// Pass probability for a script (2016-era CAPTCHA-solving services made
/// this non-zero but small).
pub const BOT_PASS_RATE: f64 = 0.08;

/// Outcome of gating a recruited cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Participants admitted to the experiment, in arrival order.
    pub admitted: Vec<Participant>,
    /// Count turned away at the gate (not part of any campaign table —
    /// the paper's Table 1 only ever counts admitted participants).
    pub rejected: usize,
}

/// Whether one participant passes the "I'm not a robot" gate.
///
/// Pure and side-effect free (the decision draws only from the
/// participant's own derived seed stream), so the sharded streaming
/// engine can evaluate it in its counting pre-pass without touching the
/// obs counters; [`captcha_gate`] applies it to a whole cohort and
/// reports totals.
pub fn captcha_admits(p: &Participant) -> bool {
    captcha_admits_persona(&p.persona())
}

/// [`captcha_admits`] from a trait-core [`Persona`] — what the flat
/// engine's gate column evaluates (the decision reads only the seed and
/// the class, both of which the persona carries).
pub fn captcha_admits_persona(p: &Persona) -> bool {
    captcha_admits_gate(p.seed, p.class)
}

/// [`captcha_admits`] from just the gate-relevant traits — the derived
/// participant seed and the class, i.e. what
/// `PopulationProfile::generate_gate` draws. The counting pre-passes of
/// the sharded engines evaluate this without generating a persona (or
/// the materializing path's per-participant country `String`).
pub fn captcha_admits_gate(seed: eyeorg_stats::Seed, class: ParticipantClass) -> bool {
    let mut rng = Rng::seed_from_u64(seed.derive("captcha").value());
    let pass_rate = if class == ParticipantClass::Bot {
        BOT_PASS_RATE
    } else {
        HUMAN_PASS_RATE
    };
    rng.random_bool(pass_rate)
}

/// Apply the "I'm not a robot" gate to a recruited cohort.
pub fn captcha_gate(participants: Vec<Participant>) -> GateReport {
    let mut admitted = Vec::with_capacity(participants.len());
    let mut rejected = 0;
    for p in participants {
        if captcha_admits(&p) {
            admitted.push(p);
        } else {
            rejected += 1;
        }
    }
    eyeorg_obs::metrics::CORE_GATE_ADMITTED.add(admitted.len() as u64);
    eyeorg_obs::metrics::CORE_GATE_REJECTED.add(rejected as u64);
    GateReport { admitted, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_crowd::PopulationProfile;
    use eyeorg_stats::Seed;

    #[test]
    fn gate_blocks_bots_not_humans() {
        let pop = PopulationProfile::paid().generate(Seed(1), 2000);
        let bots_before =
            pop.iter().filter(|p| p.class == ParticipantClass::Bot).count();
        let humans_before = pop.len() - bots_before;
        let report = captcha_gate(pop);
        let bots_after = report
            .admitted
            .iter()
            .filter(|p| p.class == ParticipantClass::Bot)
            .count();
        let humans_after = report.admitted.len() - bots_after;
        assert!(bots_before > 20, "population contains bots: {bots_before}");
        assert!(
            (bots_after as f64) < 0.25 * bots_before as f64,
            "gate must stop most bots: {bots_after}/{bots_before}"
        );
        assert!(
            (humans_after as f64) > 0.98 * humans_before as f64,
            "gate must not harm humans: {humans_after}/{humans_before}"
        );
        assert_eq!(report.admitted.len() + report.rejected, 2000);
    }

    #[test]
    fn trusted_cohort_passes_untouched_modulo_misfires() {
        let pop = PopulationProfile::trusted().generate(Seed(2), 500);
        let report = captcha_gate(pop);
        assert!(report.rejected <= 8, "rejected {}", report.rejected);
    }

    #[test]
    fn gate_only_draw_matches_full_generation() {
        // The pre-pass shortcut (class-only draw) must agree with the
        // full participant path for every index, on both pools.
        for pop in [PopulationProfile::paid(), PopulationProfile::trusted()] {
            for i in 0..2000u64 {
                let full = captcha_admits(&pop.generate_one(Seed(9), i));
                let (pseed, class) = pop.generate_gate(Seed(9), i);
                assert_eq!(captcha_admits_gate(pseed, class), full, "i={i}");
            }
        }
    }

    #[test]
    fn gate_deterministic() {
        let pop = PopulationProfile::paid().generate(Seed(3), 300);
        assert_eq!(captcha_gate(pop.clone()), captcha_gate(pop));
    }
}
