//! A website: resources, origins, layout.
//!
//! [`Website`] is the unit both measurement campaigns sample: the paper
//! takes "100 of the Alexa top 1M sites that fully support HTTP/2" for the
//! timeline and H1-vs-H2 campaigns and "100 of 10,000 ad-displaying sites"
//! for the ad-blocker campaign. The struct carries everything the browser,
//! metrics and perception layers need; validation enforces the structural
//! invariants the generator promises.

use serde::{Deserialize, Serialize};

use crate::resource::{Discovery, Resource, ResourceId, ResourceKind};

/// One origin (host) a website loads from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Origin {
    /// Hostname, unique within the site.
    pub host: String,
    /// Whether the origin negotiates HTTP/2 (all first-party origins in
    /// the Alexa-like corpus do; some third parties may not — webpeg's
    /// per-capture protocol choice can only downgrade them).
    pub supports_h2: bool,
    /// Whether this is a third-party origin (ads/trackers/widgets/CDNs
    /// not controlled by the site).
    pub third_party: bool,
}

/// A complete synthetic website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Website {
    /// Stable site name, e.g. `site042.example`.
    pub name: String,
    /// Origin table; entry 0 is always the first-party origin serving
    /// the document.
    pub origins: Vec<Origin>,
    /// Resources; entry 0 is always the root HTML document.
    pub resources: Vec<Resource>,
    /// Page canvas width in CSS px.
    pub canvas_width: u32,
    /// Full page height in CSS px.
    pub page_height: u32,
    /// Fold line: content with `y <` this is above the fold (initial
    /// viewport height).
    pub fold_y: u32,
}

/// Structural-invariant violations detected by [`Website::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteError {
    /// Resource 0 missing or not HTML / not root-discovered.
    BadRoot,
    /// A resource references an origin outside the origin table.
    DanglingOrigin(ResourceId),
    /// A `Discovery::Parent` points to a missing or later resource that
    /// creates a cycle (parents must precede children).
    BadParent(ResourceId),
    /// A visual resource has no rect or a zero-area rect.
    MissingRect(ResourceId),
    /// A rect extends beyond the page canvas.
    RectOutOfBounds(ResourceId),
    /// The origin table is empty or origin 0 is marked third-party.
    BadOrigins,
    /// A resource has zero body bytes (nothing to transfer).
    EmptyBody(ResourceId),
}

impl Website {
    /// The root document.
    pub fn root(&self) -> &Resource {
        &self.resources[0]
    }

    /// Total body bytes across all resources.
    pub fn total_bytes(&self) -> u64 {
        self.resources.iter().map(|r| r.body_bytes).sum()
    }

    /// Number of resources of a given kind.
    pub fn count_kind(&self, kind: ResourceKind) -> usize {
        self.resources.iter().filter(|r| r.kind == kind).count()
    }

    /// Whether the site displays ads.
    pub fn has_ads(&self) -> bool {
        self.count_kind(ResourceKind::Ad) > 0
    }

    /// Total above-the-fold paintable area (the denominator of visual
    /// completeness): the sum of visible areas of visual resources,
    /// clipped at the fold.
    pub fn above_fold_area(&self) -> u64 {
        self.resources
            .iter()
            .filter_map(|r| r.rect.as_ref())
            .filter_map(|rect| rect.above_fold(self.fold_y))
            .map(|rect| rect.area())
            .sum()
    }

    /// Resources whose rects intersect the viewport (above the fold).
    pub fn above_fold_resources(&self) -> Vec<ResourceId> {
        self.resources
            .iter()
            .filter(|r| {
                r.rect
                    .as_ref()
                    .map(|rect| rect.above_fold(self.fold_y).is_some())
                    .unwrap_or(false)
            })
            .map(|r| r.id)
            .collect()
    }

    /// Check every structural invariant; returns all violations.
    pub fn validate(&self) -> Vec<SiteError> {
        let mut errs = Vec::new();
        if self.origins.is_empty() || self.origins[0].third_party {
            errs.push(SiteError::BadOrigins);
        }
        match self.resources.first() {
            Some(root)
                if root.kind == ResourceKind::Html && root.discovery == Discovery::Root => {}
            _ => errs.push(SiteError::BadRoot),
        }
        for (i, r) in self.resources.iter().enumerate() {
            if r.id != ResourceId(i as u32) {
                errs.push(SiteError::BadParent(r.id)); // ids must be dense
                continue;
            }
            if usize::from(r.origin.0) >= self.origins.len() {
                errs.push(SiteError::DanglingOrigin(r.id));
            }
            if r.body_bytes == 0 {
                errs.push(SiteError::EmptyBody(r.id));
            }
            if let Discovery::Parent { parent } = r.discovery {
                if parent.0 >= r.id.0 {
                    errs.push(SiteError::BadParent(r.id));
                }
            }
            if r.kind.is_visual() && r.kind != ResourceKind::Css {
                match &r.rect {
                    None => errs.push(SiteError::MissingRect(r.id)),
                    Some(rect) if rect.area() == 0 => errs.push(SiteError::MissingRect(r.id)),
                    Some(rect) => {
                        if rect.x + rect.w > self.canvas_width
                            || rect.y + rect.h > self.page_height
                        {
                            errs.push(SiteError::RectOutOfBounds(r.id));
                        }
                    }
                }
            }
        }
        errs
    }

    /// Resources discovered (directly or transitively) without executing
    /// any script — the set whose completion gates the `onload` event in
    /// the browser model. Script-injected resources (ads fetched by
    /// tracker JS) may finish after onload, which is exactly the
    /// "OnLoad underestimates" case from the paper's introduction.
    pub fn statically_discovered(&self) -> Vec<ResourceId> {
        self.resources
            .iter()
            .filter(|r| match r.discovery {
                Discovery::Root | Discovery::Html { .. } => true,
                Discovery::Parent { parent } => {
                    // CSS-referenced resources are static; JS-injected not.
                    self.resources[parent.0 as usize].kind == ResourceKind::Css
                }
            })
            .map(|r| r.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{OriginRef, Rect};

    fn minimal_site() -> Website {
        Website {
            name: "test.example".into(),
            origins: vec![Origin { host: "test.example".into(), supports_h2: true, third_party: false }],
            resources: vec![Resource {
                id: ResourceId(0),
                kind: ResourceKind::Html,
                origin: OriginRef(0),
                body_bytes: 30_000,
                request_header_bytes: 400,
                response_header_bytes: 300,
                rect: Some(Rect { x: 0, y: 0, w: 1280, h: 2000 }),
                discovery: Discovery::Root,
                render_blocking: false,
                defer: false,
                server_think_us: 20_000,
            }],
            canvas_width: 1280,
            page_height: 2000,
            fold_y: 720,
        }
    }

    #[test]
    fn minimal_site_validates() {
        assert!(minimal_site().validate().is_empty());
    }

    #[test]
    fn detects_bad_root() {
        let mut s = minimal_site();
        s.resources[0].kind = ResourceKind::Image;
        assert!(s.validate().contains(&SiteError::BadRoot));
    }

    #[test]
    fn detects_dangling_origin() {
        let mut s = minimal_site();
        s.resources[0].origin = OriginRef(5);
        assert!(s.validate().contains(&SiteError::DanglingOrigin(ResourceId(0))));
    }

    #[test]
    fn detects_forward_parent() {
        let mut s = minimal_site();
        let mut img = s.resources[0].clone();
        img.id = ResourceId(1);
        img.kind = ResourceKind::Image;
        img.rect = Some(Rect { x: 0, y: 0, w: 100, h: 100 });
        img.discovery = Discovery::Parent { parent: ResourceId(1) }; // self-parent
        s.resources.push(img);
        assert!(s.validate().contains(&SiteError::BadParent(ResourceId(1))));
    }

    #[test]
    fn detects_rect_out_of_bounds() {
        let mut s = minimal_site();
        s.resources[0].rect = Some(Rect { x: 1000, y: 0, w: 500, h: 100 });
        assert!(s.validate().contains(&SiteError::RectOutOfBounds(ResourceId(0))));
    }

    #[test]
    fn above_fold_area_clips() {
        let s = minimal_site();
        // Root rect is 1280 wide, 2000 tall; fold at 720.
        assert_eq!(s.above_fold_area(), 1280 * 720);
    }

    #[test]
    fn statically_discovered_excludes_js_children() {
        let mut s = minimal_site();
        let base = s.resources[0].clone();
        // 1: a sync script.
        let mut js = base.clone();
        js.id = ResourceId(1);
        js.kind = ResourceKind::Js;
        js.rect = None;
        js.discovery = Discovery::Html { at_fraction: 0.2 };
        s.resources.push(js);
        // 2: an ad injected by that script.
        let mut ad = base.clone();
        ad.id = ResourceId(2);
        ad.kind = ResourceKind::Ad;
        ad.rect = Some(Rect { x: 0, y: 0, w: 300, h: 250 });
        ad.discovery = Discovery::Parent { parent: ResourceId(1) };
        s.resources.push(ad);
        // 3: a CSS file and 4: a font it references (static chain).
        let mut css = base.clone();
        css.id = ResourceId(3);
        css.kind = ResourceKind::Css;
        css.rect = None;
        css.discovery = Discovery::Html { at_fraction: 0.05 };
        s.resources.push(css);
        let mut font = base.clone();
        font.id = ResourceId(4);
        font.kind = ResourceKind::Font;
        font.rect = None;
        font.discovery = Discovery::Parent { parent: ResourceId(3) };
        s.resources.push(font);

        let static_ids = s.statically_discovered();
        assert!(static_ids.contains(&ResourceId(0)));
        assert!(static_ids.contains(&ResourceId(1)));
        assert!(!static_ids.contains(&ResourceId(2)), "JS-injected ad is dynamic");
        assert!(static_ids.contains(&ResourceId(3)));
        assert!(static_ids.contains(&ResourceId(4)), "CSS-referenced font is static");
    }

    #[test]
    fn serde_roundtrip() {
        let s = minimal_site();
        let json = serde_json::to_string(&s).unwrap();
        let back: Website = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
