//! D8 unused waiver: the env read below is on the EYEORG_* allowlist.

pub fn fingerprint_env() -> u64 {
    // lint:allow(D8): stale - the variable moved onto the EYEORG_* allowlist
    let v = std::env::var("EYEORG_THREADS").ok();
    v.map(|s| s.len() as u64).unwrap_or(0)
}
