//! The owned JSON value tree shared by the serde/serde_json stand-ins.

/// An owned JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// exports diff byte-for-byte across runs, so field order must be the
/// declaration order the derive macro emits.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Shared sentinel for missing-field lookups.
const NULL: Value = Value::Null;

impl Value {
    /// Human name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object field lookup; `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| {
            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        })
    }

    /// Object field lookup returning `Null` for missing fields — the
    /// derive-generated deserializers use this so `Option` fields may be
    /// omitted.
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|items| items.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            // Numbers compare by mathematical value across variants.
            (a, b) => match (a.as_u64(), b.as_u64()) {
                (Some(x), Some(y)) => x == y,
                _ => match (a.as_i64(), b.as_i64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => x == y,
                        _ => false,
                    },
                },
            },
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
