//! Multi-process checkpoint harness for the §3i serialization layer:
//! proves that interrupt/resume and independently-written worker
//! checkpoints compose — digest *and* observability-counter
//! fingerprint — to the uninterrupted single-process run.
//!
//! Three modes over one fixed smoke campaign (4 stimuli × 400
//! participants, shard 64, checkpoint every 2 shards):
//!
//! * `--smoke [--fingerprint-out PATH] [--live-out PATH]` — in-process
//!   gates, exiting non-zero on any failure:
//!   (a) the checkpointed driver with an inactive rule equals the
//!   plain streaming engine (digest + counters) for both backends;
//!   (b) interrupt at the first barrier → `save` → `load` in a
//!   simulated fresh process (obs registry reset) → resume equals the
//!   uninterrupted run, plain and adaptive (decision fingerprint
//!   included), both backends — and the same for the A/B driver;
//!   (c) `save` → `load` → `save` is a byte-level fixed point.
//!   `--fingerprint-out` writes the run's fingerprints so
//!   `scripts/verify.sh` can `cmp` runs at different `EYEORG_THREADS`
//!   values; `--live-out` writes the live JSONL stream (one line per
//!   barrier, final line checked against the end-of-run digest).
//! * `--worker LO HI --out PATH [--flat]` — run the worker slice
//!   `[LO, HI)` of the same campaign in *this* process and write its
//!   checkpoint file. `verify.sh` launches several of these as real
//!   child processes over disjoint ranges.
//! * `--merge OUT_FP FILE...` — load the checkpoint files, merge them
//!   in range order, finalize, and write `digest-fp\ncounter-fp\n` for
//!   the caller to `cmp` against the single-process reference.

use eyeorg_bench::campaigns::capture_browser;
use eyeorg_core::prelude::*;
use eyeorg_core::adaptive::AdaptiveBackend;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const SITES: usize = 4;
const PARTICIPANTS: usize = 400;
const SHARD: usize = 64;
const EVERY_SHARDS: usize = 2;

/// Active stopping rule for the adaptive resume gate: fires on this
/// workload well before the 400-participant budget.
const SMOKE_EPSILON: f64 = 0.25;
const SMOKE_MIN_N: u64 = 32;

fn seed() -> Seed {
    Seed(2016).derive("merge-digests")
}

fn smoke_stimuli() -> Vec<TimelineStimulus> {
    let corpus = alexa_like(seed().derive("sites"), SITES);
    let capture = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
    timeline_stimuli(&corpus, &capture_browser(), &capture, seed().derive("capture"))
}

fn smoke_ab_stimuli() -> Vec<AbStimulus> {
    let corpus = alexa_like(seed().derive("sites"), SITES);
    let capture = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
    protocol_ab_stimuli(&corpus, &capture_browser(), &capture, seed().derive("ab-capture"))
}

/// `threads: 0` so the `EYEORG_THREADS` knob applies — `verify.sh`
/// compares fingerprint files across thread counts.
fn cfg() -> ExperimentConfig {
    ExperimentConfig { threads: 0, ..ExperimentConfig::default() }
}

fn scfg() -> StreamConfig {
    StreamConfig { shard_size: SHARD, ..StreamConfig::default() }
}

fn ck_cfg() -> CheckpointConfig {
    CheckpointConfig { every_shards: EVERY_SHARDS }
}

fn inactive() -> AdaptiveConfig {
    AdaptiveConfig { epoch: 64, epsilon: 0.0, min_n: 8, max_n: 0 }
}

fn active() -> AdaptiveConfig {
    AdaptiveConfig { epoch: 64, epsilon: SMOKE_EPSILON, min_n: SMOKE_MIN_N, max_n: 0 }
}

fn counters() -> String {
    eyeorg_obs::snapshot("merge-digests", 0).counter_fingerprint()
}

/// Drive the checkpointed timeline campaign, stopping at the
/// `stop_after`-th barrier when given (None = run to completion).
/// Returns the outcome plus the live JSONL lines seen.
fn run_ck(
    stimuli: &[TimelineStimulus],
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
    resume: Option<&TimelineCheckpoint>,
    stop_after: Option<usize>,
) -> (RunOutcome, Vec<String>) {
    let mut live = Vec::new();
    let mut seen = 0usize;
    let out = checkpointed_timeline_campaign(
        stimuli,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg(),
        &paper_pipeline(),
        seed().derive("run"),
        &scfg(),
        ac,
        backend,
        resume,
        &ck_cfg(),
        &mut |ev| match ev {
            CheckpointEvent::Live(line) => {
                live.push(line.to_string());
                true
            }
            CheckpointEvent::Checkpoint(_) => {
                seen += 1;
                stop_after.is_none_or(|k| seen < k)
            }
        },
    )
    .expect("checkpointed campaign");
    (out, live)
}

fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(path, contents).expect("write output file");
}

fn smoke(fp_out: Option<String>, live_out: Option<String>) {
    let stimuli = smoke_stimuli();
    let mut identical = true;

    // Reference: the plain streaming engine, digest and counters.
    eyeorg_obs::reset();
    let reference = stream_timeline_campaign(
        &stimuli,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg(),
        &paper_pipeline(),
        seed().derive("run"),
        &scfg(),
    );
    let reference_fp = reference.fingerprint();
    let reference_counters = counters();

    // Gate (a): the checkpointed driver with an inactive rule equals
    // the plain engine — and gate (b): interrupt at the first barrier,
    // reload the bytes with a reset obs registry, resume, and land on
    // the same fingerprints. Both backends.
    let mut live_lines = Vec::new();
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        eyeorg_obs::reset();
        let (out, live) = run_ck(&stimuli, &inactive(), backend, None, None);
        let RunOutcome::Complete(outcome) = out else {
            eprintln!("DIVERGENCE: {backend:?} uninterrupted run did not complete");
            std::process::exit(1);
        };
        if outcome.digest.fingerprint() != reference_fp {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} checkpointed digest != streaming engine");
        }
        if counters() != reference_counters {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} checkpointed counters != streaming engine");
        }
        let last = live.last().cloned().unwrap_or_default();
        let expect_last = live_line_from_digest(&outcome.digest, PARTICIPANTS as u64, true);
        if last != expect_last {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} final live line != end-of-run digest read-out");
        }
        println!("smoke {backend:?} uninterrupted: {} live lines", live.len());
        live_lines = live;

        // Interrupt → save → load → resume.
        eyeorg_obs::reset();
        let (out, _) = run_ck(&stimuli, &inactive(), backend, None, Some(1));
        let RunOutcome::Interrupted(ck) = out else {
            eprintln!("DIVERGENCE: {backend:?} run did not stop at the first barrier");
            std::process::exit(1);
        };
        let bytes = ck.save();
        let reloaded = TimelineCheckpoint::load(&bytes).expect("reload checkpoint");
        if reloaded.save() != bytes {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} save/load is not a fixed point");
        }
        eyeorg_obs::reset(); // simulate the resuming process starting fresh
        let (out, _) = run_ck(&stimuli, &inactive(), backend, Some(&reloaded), None);
        let RunOutcome::Complete(outcome) = out else {
            eprintln!("DIVERGENCE: {backend:?} resumed run did not complete");
            std::process::exit(1);
        };
        if outcome.digest.fingerprint() != reference_fp {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} resumed digest != uninterrupted run");
        }
        if counters() != reference_counters {
            identical = false;
            eprintln!("DIVERGENCE: {backend:?} resumed counters != uninterrupted run");
        }
        println!("smoke {backend:?} interrupt/resume: ok={identical}");
    }

    // Gate (b), adaptive: the stopping rule's decision sequence must
    // survive interruption too.
    eyeorg_obs::reset();
    let (out, _) = run_ck(&stimuli, &active(), AdaptiveBackend::Streaming, None, None);
    let RunOutcome::Complete(act_ref) = out else {
        eprintln!("DIVERGENCE: adaptive uninterrupted run did not complete");
        std::process::exit(1);
    };
    let act_fp = act_ref.digest.fingerprint();
    let act_decisions = act_ref.decision_fingerprint();
    let act_counters = counters();
    if act_ref.decisions.is_empty() {
        identical = false;
        eprintln!("DIVERGENCE: smoke epsilon never fired (calibration broken)");
    }
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        eyeorg_obs::reset();
        let (out, _) = run_ck(&stimuli, &active(), backend, None, Some(1));
        let RunOutcome::Interrupted(ck) = out else {
            eprintln!("DIVERGENCE: adaptive {backend:?} did not stop at the first barrier");
            std::process::exit(1);
        };
        let reloaded = TimelineCheckpoint::load(&ck.save()).expect("reload adaptive checkpoint");
        eyeorg_obs::reset();
        let (out, _) = run_ck(&stimuli, &active(), backend, Some(&reloaded), None);
        let RunOutcome::Complete(outcome) = out else {
            eprintln!("DIVERGENCE: adaptive {backend:?} resumed run did not complete");
            std::process::exit(1);
        };
        if outcome.digest.fingerprint() != act_fp
            || outcome.decision_fingerprint() != act_decisions
            || counters() != act_counters
        {
            identical = false;
            eprintln!("DIVERGENCE: adaptive {backend:?} resume differs from uninterrupted run");
        }
        println!("smoke adaptive {backend:?} interrupt/resume: {} decisions", outcome.decisions.len());
    }

    // The A/B driver: same interrupt → save → load → resume contract.
    let ab = smoke_ab_stimuli();
    eyeorg_obs::reset();
    let ab_ref = stream_ab_campaign(
        &ab,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg(),
        &paper_pipeline(),
        seed().derive("ab-run"),
        &scfg(),
    );
    let ab_fp = ab_ref.fingerprint();
    let ab_counters = counters();
    eyeorg_obs::reset();
    let mut seen = 0usize;
    let out = checkpointed_ab_campaign(
        &ab,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg(),
        &paper_pipeline(),
        seed().derive("ab-run"),
        &scfg(),
        None,
        &ck_cfg(),
        &mut |_| {
            seen += 1;
            seen < 1
        },
    )
    .expect("ab checkpointed campaign");
    let AbRunOutcome::Interrupted(ck) = out else {
        eprintln!("DIVERGENCE: A/B run did not stop at the first barrier");
        std::process::exit(1);
    };
    let reloaded = AbCheckpoint::load(&ck.save()).expect("reload A/B checkpoint");
    eyeorg_obs::reset();
    let out = checkpointed_ab_campaign(
        &ab,
        &CrowdFlower,
        PARTICIPANTS,
        &cfg(),
        &paper_pipeline(),
        seed().derive("ab-run"),
        &scfg(),
        Some(&reloaded),
        &ck_cfg(),
        &mut |_| true,
    )
    .expect("ab resumed campaign");
    let AbRunOutcome::Complete(digest) = out else {
        eprintln!("DIVERGENCE: A/B resumed run did not complete");
        std::process::exit(1);
    };
    if digest.fingerprint() != ab_fp || counters() != ab_counters {
        identical = false;
        eprintln!("DIVERGENCE: A/B resume differs from uninterrupted run");
    }
    println!("smoke A/B interrupt/resume: ok={identical}");

    if let Some(path) = live_out {
        write_file(&path, &(live_lines.join("\n") + "\n"));
        println!("wrote {path}");
    }
    if let Some(path) = fp_out {
        // Everything a cross-process / cross-thread-count `cmp` needs:
        // plain digest + counters (== the streaming engine's, and ==
        // what `--merge` emits), then the adaptive run's digest,
        // decision, and counter fingerprints.
        let contents = format!(
            "{reference_fp}\n{reference_counters}\n{act_fp}\n{act_decisions}\n{act_counters}\n"
        );
        write_file(&path, &contents);
        println!("wrote {path}");
    }

    if !identical {
        eprintln!("FAIL: checkpoint layer diverged");
        std::process::exit(1);
    }
    println!("smoke OK: checkpoint/resume and live analytics match the uninterrupted run");
}

fn worker(args: &[String]) {
    let mut lo = None;
    let mut hi = None;
    let mut out = None;
    let mut backend = AdaptiveBackend::Streaming;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            "--flat" => backend = AdaptiveBackend::Flat,
            v => {
                let n: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("unknown --worker argument: {v}");
                    std::process::exit(2);
                });
                if lo.is_none() {
                    lo = Some(n);
                } else {
                    hi = Some(n);
                }
            }
        }
    }
    let (Some(lo), Some(hi), Some(out)) = (lo, hi, out) else {
        eprintln!("usage: merge_digests --worker LO HI --out PATH [--flat]");
        std::process::exit(2);
    };
    // Build stimuli before the reset: the captured counter state must
    // cover the campaign only, matching the single-process reference.
    let stimuli = smoke_stimuli();
    eyeorg_obs::reset();
    let ck = timeline_worker_checkpoint(
        &stimuli,
        &CrowdFlower,
        lo,
        hi,
        &cfg(),
        &paper_pipeline(),
        seed().derive("run"),
        &scfg(),
        backend,
    )
    .unwrap_or_else(|e| {
        eprintln!("FAIL: worker [{lo}, {hi}) checkpoint: {e}");
        std::process::exit(1);
    });
    write_file(&out, &ck.save());
    println!("worker [{lo}, {hi}) ({backend:?}) wrote {out}");
}

fn merge(args: &[String]) {
    let [out_fp, files @ ..] = args else {
        eprintln!("usage: merge_digests --merge OUT_FP FILE...");
        std::process::exit(2);
    };
    if files.is_empty() {
        eprintln!("usage: merge_digests --merge OUT_FP FILE...");
        std::process::exit(2);
    }
    let mut parts: Vec<TimelineCheckpoint> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("FAIL: read {path}: {e}");
                std::process::exit(1);
            });
            TimelineCheckpoint::load(&text).unwrap_or_else(|e| {
                eprintln!("FAIL: load {path}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    parts.sort_by_key(|c| c.range().0);
    let mut merged = parts.remove(0);
    for part in &parts {
        merged.merge(part).unwrap_or_else(|e| {
            eprintln!("FAIL: merge checkpoint covering {:?}: {e}", part.range());
            std::process::exit(1);
        });
    }
    let stimuli = smoke_stimuli();
    let digest = merged.finalize(&stimuli, &CrowdFlower).unwrap_or_else(|e| {
        eprintln!("FAIL: finalize merged checkpoint: {e}");
        std::process::exit(1);
    });
    // The merged counter state is the sum of the workers' registries;
    // restore it into a clean one to render the canonical fingerprint.
    eyeorg_obs::reset();
    merged.restore_counters();
    let contents = format!("{}\n{}\n", digest.fingerprint(), counters());
    write_file(out_fp, &contents);
    println!(
        "merged {} checkpoints covering [0, {}) -> {out_fp}",
        files.len(),
        merged.range().1
    );
}

fn main() {
    eyeorg_obs::enable();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--worker") => worker(&args[1..]),
        Some("--merge") => merge(&args[1..]),
        Some("--smoke") => {
            let mut fp_out = None;
            let mut live_out = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--fingerprint-out" => {
                        fp_out = Some(it.next().expect("--fingerprint-out needs a path").clone());
                    }
                    "--live-out" => {
                        live_out = Some(it.next().expect("--live-out needs a path").clone());
                    }
                    other => {
                        eprintln!("unknown argument: {other}");
                        std::process::exit(2);
                    }
                }
            }
            smoke(fp_out, live_out);
        }
        _ => {
            eprintln!(
                "usage: merge_digests --smoke [--fingerprint-out PATH] [--live-out PATH]\n\
                 \x20      merge_digests --worker LO HI --out PATH [--flat]\n\
                 \x20      merge_digests --merge OUT_FP FILE..."
            );
            std::process::exit(2);
        }
    }
}
