//! D6 trip: raw float ordering and accumulation in a fingerprinted crate.

pub fn spread(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v.iter().sum::<f64>()
}
