//! Extending Eyeorg (§6 "Extending Eyeorg"): a study the paper only
//! gestures at — how network and device conditions change what the crowd
//! perceives — using the platform's emulation knobs directly.
//!
//! One site is captured under every network profile and two device
//! classes; a small crowd rates each capture on the timeline test. The
//! output shows crowd UPLT tracking the capture conditions, which is the
//! platform's whole premise: the *capture* controls the experience, not
//! the participants' own connections.
//!
//! ```sh
//! cargo run --release --example network_emulation
//! ```

use eyeorg_browser::{BrowserConfig, DeviceProfile};
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_metrics::compute_metrics;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::{generate_site, SiteClass};

fn main() {
    let seed = Seed(123);
    let site = generate_site(seed, 0, SiteClass::News);
    println!(
        "site: {} ({} objects, {:.1} MB)\n",
        site.name,
        site.resources.len(),
        site.total_bytes() as f64 / 1e6
    );

    println!("network  device       onload  speedindex  crowd-UPLT");
    for profile in NetworkProfile::presets() {
        for device in [DeviceProfile::desktop(), DeviceProfile::mobile_mid()] {
            let browser = BrowserConfig::new()
                .with_network(profile.clone())
                .with_device(device);
            let stimuli = timeline_stimuli(
                std::slice::from_ref(&site),
                &browser,
                &CaptureConfig { repeats: 3, ..CaptureConfig::default() },
                seed.derive(profile.name).derive(device.name),
            );
            let metrics = compute_metrics(&stimuli[0].video);
            let campaign = run_timeline_campaign(
                stimuli,
                &CrowdFlower,
                24,
                &ExperimentConfig { videos_per_participant: 1, with_controls: false, ..ExperimentConfig::default() },
                seed.derive(profile.name).derive(device.name),
            );
            let report = filter_timeline(&campaign, &paper_pipeline());
            let uplt = mean_uplt(&campaign, &report, Some((25.0, 75.0)))[0];
            println!(
                "{:<8} {:<11} {:>7.2}s {:>10.2}s {:>10.2}s",
                profile.name,
                device.name,
                metrics.onload.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
                metrics.speed_index.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
                uplt.unwrap_or(f64::NAN),
            );
        }
    }
    println!("\nSlower captures feel slower to everyone — regardless of the");
    println!("participants' own connections, which never touch these numbers.");
}
