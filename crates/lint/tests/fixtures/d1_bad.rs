//! D1 trip: hash collections in a fingerprinted crate.

use std::collections::HashMap;

pub fn count(words: &[&str]) -> usize {
    let mut seen: HashMap<&str, u32> = HashMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
