//! Recruitment services.
//!
//! Eyeorg deliberately decouples itself from any one crowdsourcing
//! vendor (§3.3): it integrates Microworkers and CrowdFlower and also
//! recruits trusted participants over email/social media. The paper's
//! recruitment economics (Table 1) anchor the models here:
//!
//! * validation: 100 paid participants in ~1 hour for $12; 100 trusted
//!   participants in ~10 days for free;
//! * final: 1,000 paid participants in ~1.5 days for $120 per campaign.
//!
//! Those two paid data points pin a sub-linear arrival curve
//! (`t(n) = c·n^b` with `b ≈ 1.56`): the worker pool thins as a task
//! ages, so the thousandth worker takes far longer to arrive than the
//! hundredth.

use eyeorg_net::SimDuration;
use eyeorg_stats::Seed;

use crate::participant::{Participant, PopulationProfile};

/// Result of a recruitment drive.
#[derive(Debug, Clone)]
pub struct Recruitment {
    /// The recruited participants, in arrival order.
    pub participants: Vec<Participant>,
    /// Wall-clock arrival offset of each participant from campaign start.
    pub arrivals: Vec<SimDuration>,
    /// Total cost in USD.
    pub cost_usd: f64,
    /// Service the drive ran on.
    pub service: &'static str,
}

impl Recruitment {
    /// Wall-clock time to hit the recruitment target.
    pub fn duration(&self) -> SimDuration {
        self.arrivals.last().copied().unwrap_or(SimDuration::ZERO)
    }
}

/// A source of study participants.
pub trait RecruitmentService {
    /// Service name for reports.
    fn name(&self) -> &'static str;
    /// Cost per completed participant, USD.
    fn cost_per_participant(&self) -> f64;
    /// Arrival time of the `i`-th participant (0-based) after posting.
    fn arrival(&self, i: usize) -> SimDuration;
    /// The population profile this service draws from.
    fn population(&self) -> PopulationProfile;

    /// Run a drive for `n` participants.
    fn recruit(&self, seed: Seed, n: usize) -> Recruitment {
        let participants = self.population().generate(seed, n);
        let arrivals = (0..n).map(|i| self.arrival(i)).collect();
        Recruitment {
            participants,
            arrivals,
            cost_usd: self.cost_per_participant() * n as f64,
            service: self.name(),
        }
    }
}

/// CrowdFlower's "historically trustworthy" worker tier — the paper's
/// main paid channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrowdFlower;

impl RecruitmentService for CrowdFlower {
    fn name(&self) -> &'static str {
        "crowdflower"
    }

    fn cost_per_participant(&self) -> f64 {
        0.12 // $12 per 100, $120 per 1,000 (Table 1)
    }

    fn arrival(&self, i: usize) -> SimDuration {
        // t(n) = c·n^b with t(100) = 1 h and t(1000) = 36 h →
        // b = log10(36) ≈ 1.5563, c = 3600 s / 100^b.
        const B: f64 = 1.556_302_500_767_287; // log10(36)
        let c = 3600.0 / 100f64.powf(B);
        SimDuration::from_secs_f64(c * ((i + 1) as f64).powf(B))
    }

    fn population(&self) -> PopulationProfile {
        PopulationProfile::paid()
    }
}

/// Microworkers: same population shape, slightly cheaper and slower (the
/// paper integrates both; CrowdFlower ran the reported campaigns).
#[derive(Debug, Clone, Copy, Default)]
pub struct Microworkers;

impl RecruitmentService for Microworkers {
    fn name(&self) -> &'static str {
        "microworkers"
    }

    fn cost_per_participant(&self) -> f64 {
        0.10
    }

    fn arrival(&self, i: usize) -> SimDuration {
        const B: f64 = 1.556_302_500_767_287;
        let c = 5400.0 / 100f64.powf(B); // 1.5 h to the 100th worker
        SimDuration::from_secs_f64(c * ((i + 1) as f64).powf(B))
    }

    fn population(&self) -> PopulationProfile {
        PopulationProfile::paid()
    }
}

/// Trusted recruitment over email and social media: free, slow, and
/// drawn from the committed-friends population.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrustedChannel;

impl RecruitmentService for TrustedChannel {
    fn name(&self) -> &'static str {
        "trusted"
    }

    fn cost_per_participant(&self) -> f64 {
        0.0
    }

    fn arrival(&self, i: usize) -> SimDuration {
        // Roughly linear trickle: the 100th friend arrives after ~10 days.
        SimDuration::from_secs_f64(((i + 1) as f64) * 8640.0)
    }

    fn population(&self) -> PopulationProfile {
        PopulationProfile::trusted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowdflower_matches_paper_anchors() {
        let cf = CrowdFlower;
        let t100 = cf.arrival(99).as_secs_f64() / 3600.0;
        let t1000 = cf.arrival(999).as_secs_f64() / 3600.0;
        assert!((t100 - 1.0).abs() < 0.05, "100th at {t100}h");
        assert!((t1000 - 36.0).abs() < 1.0, "1000th at {t1000}h (paper: ~1.5 days)");
        let r = cf.recruit(Seed(1), 100);
        assert!((r.cost_usd - 12.0).abs() < 1e-9);
        assert_eq!(r.participants.len(), 100);
    }

    #[test]
    fn trusted_matches_paper_anchors() {
        let tc = TrustedChannel;
        let r = tc.recruit(Seed(2), 100);
        assert_eq!(r.cost_usd, 0.0);
        let days = r.duration().as_secs_f64() / 86_400.0;
        assert!((days - 10.0).abs() < 0.5, "100 trusted in {days} days");
    }

    #[test]
    fn arrivals_monotone() {
        for svc in [&CrowdFlower as &dyn RecruitmentService, &Microworkers, &TrustedChannel] {
            let mut prev = SimDuration::ZERO;
            for i in 0..50 {
                let a = svc.arrival(i);
                assert!(a >= prev, "{} arrival {i} regressed", svc.name());
                prev = a;
            }
        }
    }

    #[test]
    fn paid_recruitment_much_faster_than_trusted_at_100() {
        let cf = CrowdFlower.recruit(Seed(3), 100);
        let tr = TrustedChannel.recruit(Seed(3), 100);
        // The paper's headline: 1 hour rather than 10 days.
        assert!(tr.duration().as_secs_f64() / cf.duration().as_secs_f64() > 100.0);
    }

    #[test]
    fn recruitment_deterministic() {
        let a = CrowdFlower.recruit(Seed(4), 20);
        let b = CrowdFlower.recruit(Seed(4), 20);
        assert_eq!(a.participants, b.participants);
    }
}
