//! Whole-file Rust tokenizer for the analyzer's multi-pass engine.
//!
//! PR 4's line lexer scrubbed one line at a time; the item graph and the
//! taint passes (D7/D8) need a real token stream with byte spans. This
//! module produces one, covering every literal form the workspace uses:
//! plain/byte/raw/raw-byte strings with any `#` count, char and byte-char
//! literals (disambiguated from lifetimes), nested block comments, line
//! and doc comments, all numeric literal shapes (ints, floats, suffixes,
//! underscores, hex/oct/bin), identifiers including raw identifiers
//! (`r#type`), and punctuation.
//!
//! The line-rule pass does not consume tokens directly: `line_views`
//! projects the stream back into per-line scrubbed strings that are
//! behaviourally identical to the old `Scrubber` output (the self-test
//! in `tests/engine.rs` pins that equivalence on every fixture and on
//! the whole workspace), so rules D1–D6 and the `#[cfg(test)]` region
//! tracker run on exactly the views PR 4 validated.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (incl. raw identifiers, spelled `r#name`).
    Ident,
    /// Lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal (int or float, any base/suffix).
    Number,
    /// String literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `//` comment (incl. `///` and `//!` doc comments) to end of line.
    LineComment,
    /// `/* … */` comment, nesting respected, may span lines.
    BlockComment,
    /// Any single punctuation character not covered above.
    Punct,
    /// Whitespace run (spaces, tabs, newlines).
    White,
}

/// One token: kind plus byte span into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line on which the token starts.
    pub line: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize a whole source file. Never fails: unterminated literals or
/// comments simply extend to end of input (matching how the old line
/// lexer carried `LexState` forever), so the analyzer degrades the same
/// way on malformed input instead of erroring.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 4);
    let mut pos = 0usize;
    let mut line = 1usize;
    while pos < bytes.len() {
        let start = pos;
        let start_line = line;
        let Some(c) = src[pos..].chars().next() else { break };
        let kind = if c.is_whitespace() {
            while let Some(w) = src[pos..].chars().next() {
                if !w.is_whitespace() {
                    break;
                }
                if w == '\n' {
                    line += 1;
                }
                pos += w.len_utf8();
            }
            TokenKind::White
        } else if c == '/' && bytes.get(pos + 1) == Some(&b'/') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            TokenKind::LineComment
        } else if c == '/' && bytes.get(pos + 1) == Some(&b'*') {
            pos += 2;
            let mut depth = 1u32;
            while pos < bytes.len() && depth > 0 {
                if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
                    depth -= 1;
                    pos += 2;
                } else if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
                    depth += 1;
                    pos += 2;
                } else {
                    if bytes[pos] == b'\n' {
                        line += 1;
                    }
                    pos += 1;
                }
            }
            TokenKind::BlockComment
        } else if let Some((len, newlines)) = str_literal_len(src, pos) {
            pos += len;
            line += newlines;
            TokenKind::Str
        } else if c == '\'' || (c == 'b' && bytes.get(pos + 1) == Some(&b'\'')) {
            // Char literal vs lifetime. `b'` is always a byte-char.
            let quote = if c == 'b' { pos + 1 } else { pos };
            match char_literal_len(src, quote) {
                Some(len) => {
                    pos = quote + len;
                    TokenKind::Char
                }
                None if c == '\'' => {
                    // Lifetime tick: consume `'` + identifier chars.
                    pos += 1;
                    while let Some(l) = src[pos..].chars().next() {
                        if !is_ident_continue(l) {
                            break;
                        }
                        pos += l.len_utf8();
                    }
                    TokenKind::Lifetime
                }
                None => {
                    // `b` not followed by a valid char literal: identifier.
                    pos += 1;
                    while let Some(l) = src[pos..].chars().next() {
                        if !is_ident_continue(l) {
                            break;
                        }
                        pos += l.len_utf8();
                    }
                    TokenKind::Ident
                }
            }
        } else if c == 'r' && bytes.get(pos + 1) == Some(&b'#') && {
            // Raw identifier `r#name` (raw strings were caught above).
            src[pos + 2..].chars().next().is_some_and(is_ident_start)
        } {
            pos += 2;
            while let Some(l) = src[pos..].chars().next() {
                if !is_ident_continue(l) {
                    break;
                }
                pos += l.len_utf8();
            }
            TokenKind::Ident
        } else if is_ident_start(c) {
            while let Some(l) = src[pos..].chars().next() {
                if !is_ident_continue(l) {
                    break;
                }
                pos += l.len_utf8();
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            // Numbers: 0x/0o/0b prefixes, digits, underscores, a possible
            // fraction + exponent, and an alphanumeric suffix (u64, f32).
            // `1.method()` must not eat the dot; only `digit.digit` or a
            // trailing `1.` followed by non-ident, non-dot continues.
            pos += 1;
            while pos < bytes.len()
                && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
            {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'.' {
                let after = bytes.get(pos + 1);
                let looks_float = match after {
                    Some(a) => a.is_ascii_digit(),
                    None => true,
                };
                let is_range_or_method = matches!(after, Some(b'.'))
                    || after.is_some_and(|&a| is_ident_start(a as char));
                if looks_float && !is_range_or_method {
                    pos += 1;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                    {
                        pos += 1;
                    }
                } else if after.is_none() || (!is_range_or_method && !looks_float) {
                    // `1.` at end or before punctuation: trailing-dot float.
                    pos += 1;
                }
            }
            // Exponent sign: `1e-9` stops the alnum scan at `-`.
            if pos < bytes.len()
                && (bytes[pos] == b'-' || bytes[pos] == b'+')
                && pos >= 1
                && (bytes[pos - 1] == b'e' || bytes[pos - 1] == b'E')
                && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
            {
                pos += 1;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
            }
            TokenKind::Number
        } else {
            pos += c.len_utf8();
            TokenKind::Punct
        };
        tokens.push(Token { kind, start, end: pos, line: start_line });
    }
    tokens
}

/// If a string literal (plain, byte, raw, raw-byte) starts at `pos`,
/// return `(byte_len, newline_count)`. Unterminated literals run to EOF.
fn str_literal_len(src: &str, pos: usize) -> Option<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut j = pos;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while bytes.get(j + hashes) == Some(&b'#') {
            hashes += 1;
        }
        j += hashes;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    let mut newlines = 0usize;
    if raw {
        loop {
            match bytes.get(j) {
                None => break,
                Some(&b'"') if hashes_follow(bytes, j + 1, hashes) => {
                    j += 1 + hashes;
                    break;
                }
                Some(&b'\n') => {
                    newlines += 1;
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    } else {
        loop {
            match bytes.get(j) {
                None => break,
                Some(&b'\\') => {
                    // A `\` + newline continuation still advances the
                    // line counter.
                    if bytes.get(j + 1) == Some(&b'\n') {
                        newlines += 1;
                    }
                    j += 2;
                }
                Some(&b'"') => {
                    j += 1;
                    break;
                }
                Some(&b'\n') => {
                    newlines += 1;
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    }
    Some((j.min(src.len()) - pos, newlines))
}

fn hashes_follow(bytes: &[u8], from: usize, count: usize) -> bool {
    (0..count).all(|k| bytes.get(from + k) == Some(&b'#'))
}

/// If a char literal starts at the `'` at `quote`, return its byte
/// length (from the quote); `None` means the `'` is a lifetime tick.
fn char_literal_len(src: &str, quote: usize) -> Option<usize> {
    let bytes = src.as_bytes();
    if bytes.get(quote) != Some(&b'\'') {
        return None;
    }
    if bytes.get(quote + 1) == Some(&b'\\') {
        // Escaped char: scan to the closing quote, starting ON the
        // backslash so `'\\'` consumes both backslashes as one escape.
        let mut j = quote + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1 - quote),
                _ => j += 1,
            }
        }
        return Some(bytes.len() - quote);
    }
    // Unescaped: `'x'` for any single char x (other than `'`).
    let c = src[quote + 1..].chars().next()?;
    if c == '\'' {
        return None;
    }
    let close = quote + 1 + c.len_utf8();
    if bytes.get(close) == Some(&b'\'') {
        Some(close + 1 - quote)
    } else {
        None
    }
}

/// A source line projected out of the token stream: code with literal
/// and comment bytes blanked to spaces, plus the text of a `//` comment
/// that starts on this line (everything after the `//`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineView {
    /// Code with string/char/comment contents replaced by spaces and
    /// the line truncated at a `//` comment, exactly as the PR 4 line
    /// lexer produced (modulo trailing whitespace).
    pub code: String,
    /// Text after `//` when a line comment starts on this line.
    pub comment: Option<String>,
}

/// Project the token stream back into per-line scrubbed views. `src`
/// must be the text `tokens` was produced from.
pub fn line_views(src: &str, tokens: &[Token]) -> Vec<LineView> {
    let line_count = src.lines().count();
    let mut views = vec![LineView { code: String::new(), comment: None }; line_count];
    if line_count == 0 {
        return views;
    }
    // Byte ranges of each line (excluding the newline).
    let mut line_spans = Vec::with_capacity(line_count);
    let mut start = 0usize;
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_spans.push((start, i));
            start = i + 1;
        }
    }
    if start <= src.len() && line_spans.len() < line_count {
        line_spans.push((start, src.len()));
    }
    // Blank mask: true for every byte inside a literal or comment, and
    // the cut point of each line comment.
    let mut blank = vec![false; src.len()];
    // Per line: byte offset (within the line) where a `//` comment cuts
    // the code short.
    let mut cut: Vec<Option<usize>> = vec![None; line_count];
    for tok in tokens {
        match tok.kind {
            TokenKind::Str | TokenKind::Char | TokenKind::BlockComment => {
                for m in &mut blank[tok.start..tok.end] {
                    *m = true;
                }
            }
            TokenKind::LineComment => {
                let li = tok.line - 1;
                let (ls, _) = line_spans[li];
                cut[li] = Some(tok.start - ls);
                views[li].comment = Some(src[tok.start + 2..tok.end].to_owned());
            }
            _ => {}
        }
    }
    for (li, &(ls, le)) in line_spans.iter().enumerate() {
        let end = match cut[li] {
            Some(c) => ls + c,
            None => le,
        };
        let text = &src[ls..end];
        let mut code = String::with_capacity(text.len());
        for (off, ch) in text.char_indices() {
            if blank[ls + off] {
                code.push(' ');
            } else {
                code.push(ch);
            }
        }
        views[li].code = code;
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::White)
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    #[test]
    fn covers_every_byte_in_order() {
        let src = r##"fn f<'a>(x: &'a str) -> u64 { let c = 'x'; b"by"; r#"raw"#; 0x1f_u64 }"##;
        let toks = tokenize(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn classifies_literals() {
        let got = kinds(r##"let s = "a\"b"; let r = r#"x"#; let c = '\n'; let b = b'0';"##);
        let lits: Vec<_> = got
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Str | TokenKind::Char))
            .collect();
        assert_eq!(lits.len(), 4, "{got:?}");
        assert_eq!(lits[0].0, TokenKind::Str);
        assert_eq!(lits[1].0, TokenKind::Str);
        assert_eq!(lits[2].0, TokenKind::Char);
        assert_eq!(lits[3].0, TokenKind::Char);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let got = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<_> =
            got.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3, "{got:?}");
        assert_eq!(lifetimes[2].1, "'static");
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let got = kinds("a /* x /* y */ z */ b // tail");
        assert_eq!(got.len(), 4, "{got:?}");
        assert_eq!(got[1].0, TokenKind::BlockComment);
        assert_eq!(got[3].0, TokenKind::LineComment);
        assert_eq!(got[3].1, "// tail");
    }

    #[test]
    fn numbers_do_not_eat_methods_or_ranges() {
        let got = kinds("1.max(2); 0..10; 3.5e-2_f64; 0xffu8");
        let nums: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "2", "0", "10", "3.5e-2_f64", "0xffu8"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let got = kinds("let r#type = 1;");
        assert_eq!(got[1].0, TokenKind::Ident);
        assert_eq!(got[1].1, "r#type");
    }

    #[test]
    fn multiline_tokens_carry_start_line() {
        let src = "let a = \"one\ntwo\";\nlet b = 1; /* c1\nc2 */ let d = 2;\n";
        let toks = tokenize(src);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.line, 1);
        let c = toks.iter().find(|t| t.kind == TokenKind::BlockComment).unwrap();
        assert_eq!(c.line, 3);
        let d = toks.iter().filter(|t| t.kind == TokenKind::Ident).find(|t| t.text(src) == "d");
        assert_eq!(d.unwrap().line, 4);
    }

    #[test]
    fn line_views_blank_literals_and_cut_comments() {
        let src = "let x = \"HashMap\"; // HashMap in comment\nlet y = 1; /* HashMap */ let z = 2;\n";
        let toks = tokenize(src);
        let views = line_views(src, &toks);
        assert_eq!(views.len(), 2);
        assert!(!views[0].code.contains("HashMap"));
        assert_eq!(views[0].comment.as_deref(), Some(" HashMap in comment"));
        assert!(!views[1].code.contains("HashMap"));
        assert!(views[1].code.contains("let z = 2;"));
        assert!(views[1].comment.is_none());
    }

    #[test]
    fn line_views_handle_multiline_strings_and_comments() {
        let src = "let a = \"one\nHashMap two\" ; code();\n/* c1\nHashMap c2 */ after();\n";
        let views = line_views(src, &tokenize(src));
        assert_eq!(views.len(), 4);
        assert!(!views[1].code.contains("HashMap"));
        assert!(views[1].code.contains("code();"));
        assert!(!views[3].code.contains("HashMap"));
        assert!(views[3].code.contains("after();"));
    }
}
