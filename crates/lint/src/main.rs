//! `lint` — run the determinism & concurrency rules over the workspace.
//!
//! Usage: `cargo run -p eyeorg-lint [-- --root PATH]`
//!
//! Exits 0 on a clean tree, 1 with `file:line: [rule] message`
//! diagnostics when anything trips, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lint: unknown flag {other} (usage: lint [--root PATH])");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run` executes from the invoker's directory; when that is
    // not the workspace root (no `crates/` beside us), fall back to the
    // root this crate was built from.
    if !root.join("crates").is_dir() {
        if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("crates").is_dir() {
                root = candidate;
            }
        }
    }

    let report = match eyeorg_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.is_clean() {
        println!(
            "lint: clean — {} files scanned, {} waiver(s) honoured",
            report.files, report.waivers_used
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: {} finding(s) in {} files scanned ({} waiver(s) honoured)",
            report.diagnostics.len(),
            report.files,
            report.waivers_used
        );
        ExitCode::FAILURE
    }
}
