//! Regenerate Figure 7 (UserPerceivedPLT vs PLT metrics).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let fin = eyeorg_bench::campaigns::build_final_timeline(&scale);
    let report = eyeorg_bench::fig7_timeline::run(&fin);
    println!("{report}");
    eyeorg_bench::write_result("fig7.txt", &report);
    let path = eyeorg_bench::write_result("fig7.csv", &eyeorg_bench::fig7_timeline::csv(&fin));
    eprintln!("wrote {}", path.display());
}
