//! stress: the seeded-interleaving race exerciser.
//!
//! The workspace's determinism contract says campaign output and
//! observability counters are byte-identical at every thread count. The
//! unit tests check that under whatever schedule the OS happens to
//! produce — which on an idle CI box is usually the *same* schedule
//! every run, so a real ordering bug can hide for months. This binary
//! closes that gap: it re-runs the parallel campaign pipeline under
//! **seed-permuted adversarial schedules** (`eyeorg_stats::par` injects
//! 0–3 `yield_now` calls at every chunk claim and work item, driven by
//! a splitmix64 stream over `(chaos_seed, worker, step)`) at 1, 2, and
//! 4 worker threads, and fails loudly unless every combination produces
//! the same campaign digest and the same counter fingerprint.
//!
//! A second phase hammers the per-key `OnceLock` cells of the shared
//! capture cache: many workers race overlapping keys on a fresh cache
//! and every winner must hand all losers the *same allocation*, with
//! miss counters equal to the number of distinct keys regardless of the
//! interleaving.
//!
//! If `EYEORG_THREADS` is unset the binary pins it to 4 so that
//! `effective_pool` spawns real contention even on a 1-core CI box.

use std::process::ExitCode;
use std::sync::Arc;

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{par_map_range, set_chaos_seed, Seed};
use eyeorg_video::{shared_capture_cache, CaptureCache, CaptureConfig, Video};
use eyeorg_workload::{alexa_like, Website};

const SITES: usize = 6;
const REPEATS: usize = 2;
const PARTICIPANTS: usize = 80;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const CHAOS_SEEDS: [u64; 3] = [0, 0x9e37_79b9_7f4a_7c15, 0x00c0_ffee_d00d_cafe];

/// FNV-1a over the `Debug` rendering: every field of every row feeds
/// the digest, so equal digests mean byte-identical campaigns without
/// keeping the full strings around for a 9-way comparison.
fn digest<T: std::fmt::Debug>(value: &T) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{value:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cold campaign run: cleared shared cache, fresh counters, the
/// given schedule perturbation. Returns (campaign digest, counter
/// fingerprint).
fn campaign_round(sites: &[Website], threads: usize, chaos: u64) -> (u64, String) {
    shared_capture_cache().clear();
    eyeorg_obs::reset();
    set_chaos_seed(chaos);
    let seed = Seed(2016).derive("stress");
    let capture = CaptureConfig { repeats: REPEATS, ..CaptureConfig::default() };
    let stimuli = timeline_stimuli_threads(
        sites,
        &BrowserConfig::new(),
        &capture,
        seed.derive("cap"),
        threads,
    );
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let campaign =
        run_timeline_campaign(stimuli, &CrowdFlower, PARTICIPANTS, &cfg, seed.derive("run"));
    let fp = eyeorg_obs::snapshot("stress", threads).counter_fingerprint();
    (digest(&campaign), fp)
}

/// Race `workers × per_worker` requests over `distinct` overlapping keys
/// on a fresh cache. Every request for a key must come back as the same
/// `Arc` allocation, the cache must hold exactly `distinct` entries, and
/// the miss counter must equal `distinct` — the once-per-key guarantee.
fn cache_round(sites: &[Website], threads: usize, chaos: u64) -> Result<(), String> {
    eyeorg_obs::reset();
    set_chaos_seed(chaos);
    let cache = CaptureCache::new();
    let seed = Seed(2016).derive("stress-cache");
    let capture = CaptureConfig { repeats: 1, ..CaptureConfig::default() };
    let browser = BrowserConfig::new();
    let distinct = sites.len();
    let requests = distinct * 8;
    let videos: Vec<Arc<Video>> = par_map_range(requests, threads, |i| {
        cache.capture_median(&sites[i % distinct], &browser, seed.derive("k"), &capture)
    });
    if cache.len() != distinct {
        return Err(format!("cache holds {} entries, expected {distinct}", cache.len()));
    }
    for (i, v) in videos.iter().enumerate() {
        if !Arc::ptr_eq(v, &videos[i % distinct]) {
            return Err(format!("request {i} returned a different allocation for its key"));
        }
    }
    let misses = eyeorg_obs::metrics::VIDEO_CACHE_MISSES.get();
    if misses != distinct as u64 {
        return Err(format!("{misses} misses recorded, expected {distinct}"));
    }
    let total = eyeorg_obs::metrics::VIDEO_CACHE_REQUESTS.get();
    if total != requests as u64 {
        return Err(format!("{total} requests recorded, expected {requests}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var_os("EYEORG_THREADS").is_none() {
        // Before any pool is sized: effective_pool reads the override
        // once, and without it a 1-core box would clamp every round to
        // the sequential path and exercise nothing.
        std::env::set_var("EYEORG_THREADS", "4");
    }
    eyeorg_obs::enable();
    let sites = alexa_like(Seed(2016).derive("stress-sites"), SITES);

    let mut failures = 0u32;
    let mut baseline: Option<(u64, String)> = None;
    for &threads in &THREAD_COUNTS {
        for &chaos in &CHAOS_SEEDS {
            let round = campaign_round(&sites, threads, chaos);
            match &baseline {
                None => {
                    println!("campaign threads={threads} chaos={chaos:#018x} digest={:#018x} (baseline)", round.0);
                    baseline = Some(round);
                }
                Some(base) => {
                    if *base == round {
                        println!("campaign threads={threads} chaos={chaos:#018x} digest={:#018x} ok", round.0);
                    } else {
                        failures += 1;
                        let what = if base.0 != round.0 { "campaign digest" } else { "counter fingerprint" };
                        eprintln!(
                            "DIVERGENCE: threads={threads} chaos={chaos:#018x}: {what} differs from baseline"
                        );
                    }
                }
            }
        }
    }

    for &threads in &THREAD_COUNTS {
        for &chaos in &CHAOS_SEEDS {
            match cache_round(&sites, threads, chaos) {
                Ok(()) => println!("cache    threads={threads} chaos={chaos:#018x} ok"),
                Err(why) => {
                    failures += 1;
                    eprintln!("RACE: cache threads={threads} chaos={chaos:#018x}: {why}");
                }
            }
        }
    }

    set_chaos_seed(0);
    if failures == 0 {
        println!("stress: all interleavings deterministic");
        ExitCode::SUCCESS
    } else {
        eprintln!("stress: {failures} divergent interleaving(s)");
        ExitCode::FAILURE
    }
}
