//! Property-based test: the calendar `EventQueue` is observationally
//! identical to a binary min-heap on `(time, seq)`.
//!
//! Feature-gated (`--features proptest`) because the external `proptest`
//! crate cannot resolve offline; an always-on deterministic version of
//! the same comparison lives in `event.rs` unit tests.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use eyeorg_net::event::EventQueue;
use eyeorg_net::SimTime;

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at watermark + the given offset (µs).
    Schedule(u64),
    Pop,
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..2_000).prop_map(Op::Schedule),          // near future / ties
        1 => (0u64..40_000_000).prop_map(Op::Schedule),     // sparse far tail
        3 => Just(Op::Pop),
        1 => Just(Op::Peek),
    ]
}

proptest! {
    /// Any interleaving of schedules (including exact ties and far-out
    /// tails), pops, and peeks produces the same `(time, payload)`
    /// stream from the calendar queue as from the heap reference.
    #[test]
    fn calendar_matches_heap_order(ops in prop::collection::vec(op_strategy(), 1..600)) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut payload = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let t = SimTime::from_micros(now + dt);
                    cal.schedule(t, payload);
                    heap.push(Reverse((t, seq, payload)));
                    seq += 1;
                    payload += 1;
                }
                Op::Pop => {
                    let expect = heap.pop().map(|Reverse((t, _, p))| (t, p));
                    let got = cal.pop();
                    prop_assert_eq!(got, expect);
                    if let Some((t, _)) = got {
                        now = t.as_micros();
                    }
                }
                Op::Peek => {
                    let expect = heap.peek().map(|Reverse((t, _, _))| *t);
                    prop_assert_eq!(cal.peek_time(), expect);
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain both completely; order must match to the last event.
        while let Some(Reverse((t, _, p))) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some((t, p)));
        }
        prop_assert!(cal.is_empty());
    }
}
