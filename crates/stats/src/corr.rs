//! Pearson and Spearman correlation.
//!
//! Fig. 7b of the paper reports the correlation between the crowd's mean
//! `UserPerceivedPLT` and each automatic PLT metric across the 100-site
//! final timeline campaign (paper values: OnLoad 0.85, FirstVisualChange
//! 0.84, SpeedIndex 0.68, LastVisualChange 0.47). The paper does not name
//! the estimator; we provide Pearson (the conventional reading of an
//! unqualified "correlation") and Spearman as a robustness check, and the
//! bench harness reports both.

/// Pearson product-moment correlation coefficient of two paired samples.
///
/// Returns `None` when the samples differ in length, have fewer than two
/// points, or either has zero variance (the coefficient is undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation: Pearson correlation of the rank-transformed
/// samples, with tied values assigned the mean of their rank range
/// (fractional ranking). Same degenerate-input behaviour as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

/// Fractional ranks of a sample (1-based; ties share the mean rank).
pub fn ranks(sample: &[f64]) -> Vec<f64> {
    let n = sample.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| sample[a].total_cmp(&sample[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of tied values starting at sorted position i.
        let mut j = i;
        while j + 1 < n && sample[idx[j + 1]] == sample[idx[i]] {
            j += 1;
        }
        // Mean of 1-based ranks i+1 ..= j+1.
        let mean_rank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pearson_value() {
        // Cross-checked with scipy.stats.pearsonr.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((pearson(&x, &y).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none()); // zero variance
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // x^3: nonlinear but monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is strictly below 1.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn ranks_handle_ties_fractionally() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_with_ties_matches_scipy() {
        // scipy.stats.spearmanr([1,2,2,3],[1,3,2,4]) ≈ 0.9486832980505138
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        assert!((spearman(&x, &y).unwrap() - 0.948_683_298_050_513_8).abs() < 1e-9);
    }
}
