//! `eyeorg-lint`: determinism & concurrency static analysis for the
//! Eyeorg workspace.
//!
//! The platform's contract (DESIGN.md §3) is that campaign output and
//! observability counter fingerprints are **byte-identical at any
//! thread count**. `scripts/verify.sh` checks that after the fact by
//! diffing run outputs; this crate enforces it at the source level, so
//! a nondeterminism hazard fails the build instead of surviving until
//! it happens to reproduce on some machine.
//!
//! Five rules, each mapped to a way the contract has historically been
//! broken in systems like this:
//!
//! * **D1** — no `HashMap`/`HashSet` in fingerprinted crates (net,
//!   http, browser, video, core, stats, metrics, crowd, workload).
//!   Hash iteration order is seeded per-process; any order that escapes
//!   into output breaks byte-identity. Use `BTreeMap`/`BTreeSet`.
//! * **D2** — no `Instant::now`/`SystemTime` outside `eyeorg-obs`
//!   timing internals and `crates/bench`. Fingerprinted values must be
//!   pure functions of the workload and its seeds, never of the clock.
//! * **D3** — no `Ordering::*` atomics outside `eyeorg-obs`. Ad-hoc
//!   atomics are exactly where thread-count-dependent behaviour hides;
//!   the few legitimate uses carry an order-independence proof in a
//!   waiver.
//! * **D4** — no `unwrap()`/`expect()` in library (non-test,
//!   non-bench, non-binary) code without a waiver stating the invariant
//!   that rules the panic out.
//! * **D5** — no `thread::spawn`/`thread::scope` outside
//!   `eyeorg-stats::par`. All parallelism goes through the
//!   deterministic index-pinned engine.
//!
//! Any finding can be waived inline:
//!
//! ```text
//! // lint:allow(D4): Ecdf::new rejects empty samples, so `sorted` is non-empty
//! let hi = *self.sorted.last().expect("non-empty");
//! ```
//!
//! A waiver on its own comment line covers the **next** line; a waiver
//! in a trailing comment covers its **own** line. The reason is
//! mandatory, and a waiver that never suppresses a finding is itself an
//! error — stale waivers rot into blanket exemptions otherwise.
//!
//! The analysis is deliberately not a full parser: a line-oriented
//! lexer strips string literals (including multi-line and raw strings),
//! `//` and nested `/* */` comments, and char literals (disambiguated
//! from lifetimes), tracks brace depth to delimit `#[cfg(test)]`
//! regions, and then matches word-bounded patterns on what remains.
//! That is enough to be exact on this codebase while keeping the crate
//! hermetic: no `syn`, no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose output feeds the campaign / counter fingerprints; D1
/// applies to every source line in these, test code included.
pub const FINGERPRINTED_CRATES: &[&str] =
    &["net", "http", "browser", "video", "core", "stats", "metrics", "crowd", "workload"];

/// The five determinism & concurrency rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in fingerprinted crates.
    D1,
    /// No wall-clock reads outside `eyeorg-obs` / `crates/bench`.
    D2,
    /// No `Ordering::*` atomics outside `eyeorg-obs`.
    D3,
    /// No `unwrap()`/`expect()` in library code without a waiver.
    D4,
    /// No `thread::spawn`/`thread::scope` outside `eyeorg-stats::par`.
    D5,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 5] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5];

impl Rule {
    /// The short code used in diagnostics and waivers (`D1`..`D5`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
        }
    }

    /// Parse a waiver rule name.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            _ => None,
        }
    }

    /// Word-bounded patterns whose presence on a code line trips the rule.
    fn needles(self) -> &'static [&'static str] {
        match self {
            Rule::D1 => &["HashMap", "HashSet", "hash_map::", "hash_set::"],
            Rule::D2 => &["Instant::now", "SystemTime"],
            Rule::D3 => &[
                "Ordering::Relaxed",
                "Ordering::Acquire",
                "Ordering::Release",
                "Ordering::AcqRel",
                "Ordering::SeqCst",
            ],
            Rule::D4 => &[".unwrap()", ".expect("],
            Rule::D5 => &["thread::spawn", "thread::scope"],
        }
    }

    /// Why a hit is a determinism/concurrency hazard.
    fn message(self) -> &'static str {
        match self {
            Rule::D1 => {
                "HashMap/HashSet in a fingerprinted crate: hash iteration order is \
                 per-process and breaks byte-identical output; use BTreeMap/BTreeSet \
                 or waive with proof that the order never escapes"
            }
            Rule::D2 => {
                "wall-clock read outside eyeorg-obs/bench: fingerprinted values must \
                 be pure functions of the workload and its seeds, never of the clock"
            }
            Rule::D3 => {
                "raw atomic ordering outside eyeorg-obs: ad-hoc atomics are where \
                 thread-count-dependent behaviour hides; route through eyeorg-obs or \
                 waive with an order-independence proof"
            }
            Rule::D4 => {
                "unwrap()/expect() in library code: return Result/Option, or waive \
                 stating the invariant that rules the panic out"
            }
            Rule::D5 => {
                "thread::spawn/scope outside eyeorg-stats::par: all parallelism must \
                 go through the deterministic index-pinned engine"
            }
        }
    }
}

/// How a source file is classified for rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Workspace-relative path, used in diagnostics.
    pub display_path: String,
    /// Crate short name (`net`, `stats`, ... or `root` for the
    /// top-level `eyeorg` package).
    pub crate_name: String,
    /// Whether the file lives under a `tests/` directory (integration
    /// tests: D4/D5 do not apply).
    pub in_tests_dir: bool,
    /// Whether the file is a binary entry point or example
    /// (`src/bin/`, `src/main.rs`, `examples/`): not library code, so
    /// D4 does not apply.
    pub is_entrypoint: bool,
    /// Whether this is `crates/stats/src/par.rs`, the one module
    /// allowed to spawn threads (D5 exemption).
    pub is_par_module: bool,
}

impl FileMeta {
    /// Classify a workspace-relative path (`/`-separated).
    pub fn classify(rel_path: &str) -> FileMeta {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_name = match components.first() {
            Some(&"crates") if components.len() > 1 => components[1].to_owned(),
            _ => "root".to_owned(),
        };
        let in_tests_dir = components.contains(&"tests");
        let is_entrypoint = components.iter().any(|c| *c == "bin" || *c == "examples")
            || components.last() == Some(&"main.rs");
        FileMeta {
            display_path: rel_path.to_owned(),
            crate_name,
            in_tests_dir,
            is_entrypoint,
            is_par_module: rel_path == "crates/stats/src/par.rs",
        }
    }

    /// Whether `rule` applies to a line of this file; `in_test_code` is
    /// true inside `#[cfg(test)]` regions.
    fn applies(&self, rule: Rule, in_test_code: bool) -> bool {
        let test_code = in_test_code || self.in_tests_dir;
        match rule {
            Rule::D1 => FINGERPRINTED_CRATES.contains(&self.crate_name.as_str()),
            Rule::D2 => self.crate_name != "obs" && self.crate_name != "bench",
            Rule::D3 => self.crate_name != "obs",
            Rule::D4 => self.crate_name != "bench" && !test_code && !self.is_entrypoint,
            Rule::D5 => !self.is_par_module && !test_code,
        }
    }
}

/// One finding, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Diagnostic code: a rule code, `unused-waiver`, or `bad-waiver`.
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.code, self.message)
    }
}

/// Outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, ordered by (path, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of waivers that suppressed a finding.
    pub waivers_used: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// --- lexer -----------------------------------------------------------

/// Cross-line lexer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    /// Plain code.
    Normal,
    /// Inside a (nesting) block comment, with current depth.
    Block(u32),
    /// Inside a `"..."` string literal (they may span lines).
    Str,
    /// Inside a raw string literal with this many `#`s.
    RawStr(u8),
}

/// A source line after lexing: code with strings/comments blanked out,
/// plus the text of a trailing `//` comment when present.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScrubbedLine {
    code: String,
    comment: Option<String>,
}

/// Strips comments, strings, and char literals from source lines while
/// carrying state across lines.
#[derive(Debug)]
struct Scrubber {
    state: LexState,
}

impl Scrubber {
    fn new() -> Scrubber {
        Scrubber { state: LexState::Normal }
    }

    /// Process one line (no trailing newline).
    fn scrub(&mut self, line: &str) -> ScrubbedLine {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut comment = None;
        let mut i = 0;
        while i < chars.len() {
            match self.state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        self.state = if depth > 1 {
                            LexState::Block(depth - 1)
                        } else {
                            LexState::Normal
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        self.state = LexState::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else {
                        if chars[i] == '"' {
                            self.state = LexState::Normal;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' && Self::hashes_follow(&chars, i + 1, hashes) {
                        self.state = LexState::Normal;
                        i += 1 + hashes as usize;
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment = Some(chars[i + 2..].iter().collect());
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        self.state = LexState::Block(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        self.state = LexState::Str;
                        code.push(' ');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && Self::raw_prefix(&chars, i).is_some() {
                        // r"...", r#"..."#, br"...", b"..." raw/byte strings.
                        if let Some((skip, hashes, raw)) = Self::raw_prefix(&chars, i) {
                            self.state =
                                if raw { LexState::RawStr(hashes) } else { LexState::Str };
                            for _ in 0..skip {
                                code.push(' ');
                            }
                            i += skip;
                        }
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // Byte char literal b'x': delegate to char logic.
                        code.push(' ');
                        i += 1;
                    } else if c == '\'' {
                        i = Self::char_or_lifetime(&chars, i, &mut code);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        ScrubbedLine { code, comment }
    }

    /// Whether `count` `#` characters start at `from`.
    fn hashes_follow(chars: &[char], from: usize, count: u8) -> bool {
        (0..count as usize).all(|k| chars.get(from + k) == Some(&'#'))
    }

    /// If a raw or byte string starts at `i`, returns
    /// `(prefix_len_including_quote, hashes, is_raw)`.
    fn raw_prefix(chars: &[char], i: usize) -> Option<(usize, u8, bool)> {
        let mut j = i;
        if chars.get(j) == Some(&'b') {
            j += 1;
        }
        let raw = chars.get(j) == Some(&'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0u8;
        while chars.get(j + hashes as usize) == Some(&'#') && hashes < 255 {
            hashes += 1;
        }
        let j = j + hashes as usize;
        if chars.get(j) != Some(&'"') {
            return None; // raw identifier (r#type) or plain `b`/`r` code
        }
        if !raw && hashes > 0 {
            return None;
        }
        // Plain b"..." is handled here too (raw=false, hashes=0); a bare
        // "..." never reaches this function.
        if !raw && chars.get(i) != Some(&'b') {
            return None;
        }
        Some((j - i + 1, hashes, raw))
    }

    /// Disambiguate a `'` at `i`: consume a char literal (blanked) or a
    /// lifetime tick. Returns the next index.
    fn char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
        if chars.get(i + 1) == Some(&'\\') {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    break;
                }
                j += 1;
            }
            let end = (j + 1).min(chars.len());
            for _ in i..end {
                code.push(' ');
            }
            end
        } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
            // 'x' — any single-char literal.
            code.push_str("   ");
            i + 3
        } else {
            // Lifetime tick ('a, 'static, <'_>).
            code.push('\'');
            i + 1
        }
    }
}

// --- waivers ---------------------------------------------------------

/// Marker that introduces a waiver inside a `//` comment.
const WAIVER_MARKER: &str = "lint:allow(";

#[derive(Debug)]
struct Waiver {
    rule: Rule,
    declared_line: usize,
    used: bool,
}

/// Parse a waiver out of a comment, if the marker is present.
/// `Some(Err(msg))` means the marker is there but malformed.
fn parse_waiver(comment: &str) -> Option<Result<Rule, String>> {
    let idx = comment.find(WAIVER_MARKER)?;
    let rest = &comment[idx + WAIVER_MARKER.len()..];
    let close = match rest.find(')') {
        Some(c) => c,
        None => return Some(Err("malformed waiver: missing `)`".to_owned())),
    };
    let rule = match Rule::parse(rest[..close].trim()) {
        Some(r) => r,
        None => {
            return Some(Err(format!(
                "unknown rule `{}` in waiver (expected D1..D5)",
                rest[..close].trim()
            )))
        }
    };
    let after = &rest[close + 1..];
    let reason = match after.strip_prefix(':') {
        Some(r) => r.trim(),
        None => return Some(Err("malformed waiver: expected `): <reason>`".to_owned())),
    };
    if reason.is_empty() {
        return Some(Err(format!(
            "waiver for {} has no reason: state the invariant that makes it safe",
            rule.code()
        )));
    }
    Some(Ok(rule))
}

// --- per-file analysis -----------------------------------------------

/// Whether `needle` occurs in `hay` bounded by non-identifier chars.
fn find_word(hay: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = !needle.starts_with(ident)
            || !hay[..abs].chars().next_back().is_some_and(ident);
        let after_ok = !needle.ends_with(ident)
            || !hay[abs + needle.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Whether a scrubbed line carries a live `#[cfg(test)]` (and not
/// `#[cfg(not(test))]`), and at which byte offset.
fn cfg_test_pos(code: &str) -> Option<usize> {
    let pos = code.find("cfg(test)")?;
    if code[..pos].ends_with("not(") {
        return None;
    }
    Some(pos)
}

/// Lint one file's source text.
pub fn lint_source(meta: &FileMeta, source: &str) -> Report {
    let mut scrubber = Scrubber::new();
    let mut diagnostics = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    // Target line (1-based) → indices into `waivers`.
    let mut covered: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut waivers_used = 0usize;

    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_region: Option<i64> = None;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let scrubbed = scrubber.scrub(raw_line);

        // Register any waiver before checking this line's rules, so a
        // trailing waiver can cover its own line. Doc comments (`///`,
        // `//!`) are documentation, not directives — a waiver quoted in
        // one must not take effect.
        let plain_comment = scrubbed
            .comment
            .as_deref()
            .filter(|c| !c.starts_with('/') && !c.starts_with('!'));
        if let Some(parsed) = plain_comment.and_then(parse_waiver) {
            match parsed {
                Ok(rule) => {
                    let target = if scrubbed.code.trim().is_empty() {
                        line_no + 1 // standalone comment: covers the next line
                    } else {
                        line_no // trailing comment: covers its own line
                    };
                    covered.entry(target).or_default().push(waivers.len());
                    waivers.push(Waiver { rule, declared_line: line_no, used: false });
                }
                Err(msg) => diagnostics.push(Diagnostic {
                    path: meta.display_path.clone(),
                    line: line_no,
                    code: "bad-waiver".to_owned(),
                    message: msg,
                }),
            }
        }

        // Track `#[cfg(test)]` regions by brace depth. The attribute
        // arms `pending_test`; the next `{` opens the region, a `;`
        // first (e.g. `#[cfg(test)] use ...;`) cancels it.
        let attr_pos = cfg_test_pos(&scrubbed.code);
        let mut line_is_test = test_region.is_some();
        for (byte_pos, c) in scrubbed.code.char_indices() {
            if attr_pos == Some(byte_pos) {
                pending_test = true;
            }
            match c {
                '{' => {
                    if pending_test && test_region.is_none() {
                        test_region = Some(depth);
                        pending_test = false;
                        line_is_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                }
                ';' if test_region.is_none() => {
                    pending_test = false;
                }
                _ => {}
            }
        }

        for rule in ALL_RULES {
            if !meta.applies(rule, line_is_test) {
                continue;
            }
            if !rule.needles().iter().any(|n| find_word(&scrubbed.code, n)) {
                continue;
            }
            let waived = covered.get(&line_no).and_then(|idxs| {
                idxs.iter().copied().find(|&w| waivers[w].rule == rule && !waivers[w].used)
            });
            match waived {
                Some(w) => {
                    waivers[w].used = true;
                    waivers_used += 1;
                }
                None => diagnostics.push(Diagnostic {
                    path: meta.display_path.clone(),
                    line: line_no,
                    code: rule.code().to_owned(),
                    message: rule.message().to_owned(),
                }),
            }
        }
    }

    for waiver in &waivers {
        if !waiver.used {
            diagnostics.push(Diagnostic {
                path: meta.display_path.clone(),
                line: waiver.declared_line,
                code: "unused-waiver".to_owned(),
                message: format!(
                    "waiver for {} never suppressed a finding: remove it (stale \
                     waivers rot into blanket exemptions)",
                    waiver.rule.code()
                ),
            });
        }
    }

    diagnostics.sort_by(|a, b| (a.line, &a.code).cmp(&(b.line, &b.code)));
    Report { diagnostics, files: 1, waivers_used }
}

// --- workspace walking -----------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "results"];

/// Workspace-relative path prefixes excluded from scanning. The lint
/// fixtures intentionally violate every rule.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Collect every `.rs` file under `root` (sorted, workspace-relative).
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                if SKIP_PREFIXES.iter().any(|p| rel == *p) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every Rust source in the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let sources = collect_sources(root)?;
    report.files = sources.len();
    for (rel, path) in sources {
        let text = std::fs::read_to_string(&path)?;
        let meta = FileMeta::classify(&rel);
        let file_report = lint_source(&meta, &text);
        report.diagnostics.extend(file_report.diagnostics);
        report.waivers_used += file_report.waivers_used;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(path: &str) -> FileMeta {
        FileMeta::classify(path)
    }

    fn codes(meta: &FileMeta, src: &str) -> Vec<String> {
        lint_source(meta, src).diagnostics.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn classify_paths() {
        let m = meta("crates/net/src/event.rs");
        assert_eq!(m.crate_name, "net");
        assert!(!m.in_tests_dir && !m.is_entrypoint && !m.is_par_module);
        assert!(meta("crates/stats/src/par.rs").is_par_module);
        assert!(meta("crates/core/tests/determinism.rs").in_tests_dir);
        assert!(meta("crates/bench/src/bin/perf_pipeline.rs").is_entrypoint);
        assert!(meta("crates/lint/src/main.rs").is_entrypoint);
        assert!(meta("examples/quickstart.rs").is_entrypoint);
        assert_eq!(meta("src/lib.rs").crate_name, "root");
    }

    #[test]
    fn scrubber_blanks_strings_and_comments() {
        let mut s = Scrubber::new();
        let out = s.scrub(r#"let x = "HashMap"; // HashMap in comment"#);
        assert!(!out.code.contains("HashMap"));
        assert_eq!(out.comment.as_deref(), Some(" HashMap in comment"));

        let out = s.scrub("let y = 1; /* HashMap */ let z = 2;");
        assert!(!out.code.contains("HashMap"));
        assert!(out.code.contains("let z = 2;"));
    }

    #[test]
    fn scrubber_handles_nested_and_multiline_block_comments() {
        let mut s = Scrubber::new();
        let a = s.scrub("code(); /* outer /* inner */ still comment");
        assert!(a.code.contains("code();"));
        assert!(!a.code.contains("still"));
        let b = s.scrub("HashMap here */ after();");
        assert!(!b.code.contains("HashMap"));
        assert!(b.code.contains("after();"));
    }

    #[test]
    fn scrubber_handles_multiline_and_raw_strings() {
        let mut s = Scrubber::new();
        let a = s.scrub(r#"let x = "line one"#);
        assert!(!a.code.contains("line one"));
        let b = s.scrub(r#"HashMap still string" + code()"#);
        assert!(!b.code.contains("HashMap"));
        assert!(b.code.contains("code()"));

        let mut s = Scrubber::new();
        let c = s.scrub(r##"let r = r#"HashMap "quoted" inside"# ; done()"##);
        assert!(!c.code.contains("HashMap"));
        assert!(c.code.contains("done()"));
    }

    #[test]
    fn scrubber_distinguishes_chars_and_lifetimes() {
        let mut s = Scrubber::new();
        let a = s.scrub(r"let q = '\''; let l: &'static str = x; let c = '{';");
        assert!(a.code.contains("'static"));
        assert!(!a.code.contains('{'), "char literal contents are blanked: {}", a.code);
        let b = s.scrub("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(b.code.contains("<'a>"));
        assert_eq!(b.code.matches('{').count(), 1);
    }

    #[test]
    fn word_boundaries() {
        assert!(find_word("use std::collections::HashMap;", "HashMap"));
        assert!(!find_word("struct MyHashMapLike;", "HashMap"));
        assert!(!find_word("let x = v.unwrap_or(3);", ".unwrap()"));
        assert!(find_word("let x = v.unwrap();", ".unwrap()"));
        assert!(find_word("a.load(Ordering::Relaxed)", "Ordering::Relaxed"));
        assert!(!find_word("cmp::Ordering::Less", "Ordering::Relaxed"));
        assert!(find_word("std::thread::spawn(f)", "thread::spawn"));
    }

    #[test]
    fn d1_trips_only_in_fingerprinted_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D1"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/lint/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn d1_covers_the_checkpoint_module() {
        // The checkpoint serializer feeds the digest and counter
        // fingerprints directly: iteration-order nondeterminism there
        // would silently break the byte-identity gates, so its file
        // must stay under D1.
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(&meta("crates/core/src/checkpoint.rs"), src), vec!["D1"]);
    }

    #[test]
    fn d2_exempts_obs_and_bench() {
        let src = "let t = Instant::now();\n";
        assert_eq!(codes(&meta("crates/video/src/frame.rs"), src), vec!["D2"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn d4_exempts_tests_benches_and_entrypoints() {
        let src = "let v = x.unwrap();\nlet w = y.expect(\"set\");\n";
        assert_eq!(codes(&meta("crates/core/src/analysis.rs"), src), vec!["D4", "D4"]);
        assert!(codes(&meta("crates/core/tests/determinism.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/bin/run_report.rs"), src).is_empty());
        assert!(codes(&meta("examples/quickstart.rs"), src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_d4_but_not_d1() {
        let src = "\
pub fn f() -> u32 { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let v = Some(1).unwrap();
        let _ = v;
    }
}
";
        // D4 inside cfg(test) is fine; the HashMap still trips D1.
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D1"]);
        // After the test module the exemption must end.
        let src2 = format!("{src}\nfn late() {{ Some(1).unwrap(); }}\n");
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), &src2), vec!["D1", "D4"]);
    }

    #[test]
    fn cfg_not_test_does_not_open_a_region() {
        let src = "\
#[cfg(not(test))]
fn f() {
    let v = Some(1).unwrap();
}
";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D4"]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_latch() {
        let src = "\
#[cfg(test)]
use std::cell::Cell;

fn f() {
    let v = Some(1).unwrap();
}
";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D4"]);
    }

    #[test]
    fn standalone_waiver_covers_next_line_and_is_consumed() {
        let src = "\
// lint:allow(D4): the map is populated for every key at construction
let v = m.get(&k).unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src =
            "let v = m.get(&k).unwrap(); // lint:allow(D4): populated at construction\n";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "\
// lint:allow(D2): wrong rule entirely
let v = m.get(&k).unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["unused-waiver", "D4"]);
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "// lint:allow(D4): nothing below ever trips\nlet x = 1;\n";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "unused-waiver");
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn waiver_without_reason_or_with_bad_rule_is_rejected() {
        let r = lint_source(
            &meta("crates/core/src/analysis.rs"),
            "// lint:allow(D4):\nlet v = x.unwrap();\n",
        );
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["bad-waiver", "D4"]);

        let r = lint_source(
            &meta("crates/core/src/analysis.rs"),
            "// lint:allow(D9): no such rule\nlet x = 1;\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "bad-waiver");
    }

    #[test]
    fn one_waiver_covers_one_line_only() {
        let src = "\
// lint:allow(D4): covers only the next line
let a = x.unwrap();
let b = y.unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].line, 3);
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_trip() {
        let src = r#"
let msg = "never use Instant::now in fingerprinted code";
// HashMap is spelled out here, and .unwrap() too
/* thread::spawn in a block comment */
let re = r"Ordering::Relaxed";
"#;
        let r = lint_source(&meta("crates/net/src/sim.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn waiver_quoted_in_doc_comment_is_inert() {
        let src = "\
//! Example: `// lint:allow(D4): some reason`
/// And again: // lint:allow(D1): quoted
pub fn f() -> u32 {
    1
}
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn d3_and_d5_exemptions() {
        let atomics = "x.store(1, Ordering::SeqCst);\n";
        assert_eq!(codes(&meta("crates/stats/src/par.rs"), atomics), vec!["D3"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), atomics).is_empty());

        let spawn = "std::thread::scope(|s| { s.spawn(f); });\n";
        assert!(codes(&meta("crates/stats/src/par.rs"), spawn).is_empty());
        assert_eq!(codes(&meta("crates/video/src/frame.rs"), spawn), vec!["D5"]);
        // Test code may spawn threads (concurrency tests do).
        assert!(codes(&meta("crates/obs/tests/racing.rs"), spawn).is_empty());
    }
}
