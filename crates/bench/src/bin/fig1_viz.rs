//! Regenerate Figure 1 (the response-exploration view).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let fin = eyeorg_bench::campaigns::build_final_timeline(&scale);
    let report = eyeorg_bench::fig1_viz::run(&fin);
    println!("{report}");
    let path = eyeorg_bench::write_result("fig1.txt", &report);
    eprintln!("wrote {}", path.display());
}
