//! Campaign execution: recruit, serve, collect.
//!
//! A *campaign* is one recruitment drive against one experiment: the
//! validation campaigns pair 100 paid + 100 trusted participants with 20
//! videos; the final campaigns serve 100 videos to 1,000 paid
//! participants each (Table 1). This module runs a campaign end to end —
//! recruitment, stimulus assignment, per-video behaviour instrumentation,
//! response generation, and control questions — producing the raw data
//! the validation (§4) and analysis (§5) layers consume.
//!
//! This is the **materializing** engine: every showing is retained as a
//! row, which row-level consumers (viz, dataset export, ablations) need
//! but which makes memory grow with the crowd. Campaigns that only need
//! the aggregate digest should use [`crate::stream`], the sharded
//! streaming engine — byte-identical results (pinned by the
//! `streaming_equivalence` tests) in memory proportional to a shard.

use std::sync::Arc;

use eyeorg_crowd::{
    ab_control, behavior, timeline_control_passes, timeline_response_shared, AbAnswer,
    Participant, Recruitment, RecruitmentService, TestKind, TimelineResponse, VideoSession,
};
use eyeorg_net::SimTime;
use eyeorg_stats::{effective_pool, par_map_range, resolve_threads, Seed};
use eyeorg_video::{FrameTimeline, Video};

use crate::experiment::{a_on_left, assign, AbStimulus, ExperimentConfig, TimelineStimulus};

/// One timeline showing: participant × video with the full
/// instrumentation.
#[derive(Debug, Clone)]
pub struct TimelineRow {
    /// Index into the campaign's participant list.
    pub participant: usize,
    /// Index into the stimulus list.
    pub stimulus: usize,
    /// Behaviour instrumentation for this showing.
    pub session: VideoSession,
    /// The response; `None` when the participant skipped the video.
    pub response: Option<TimelineResponse>,
}

/// Answer in stimulus space (independent of left/right presentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbVerdict {
    /// Baseline (A) felt faster.
    AFaster,
    /// Treatment (B) felt faster.
    BFaster,
    /// No perceivable difference.
    NoDifference,
}

/// One A/B showing.
#[derive(Debug, Clone)]
pub struct AbRow {
    /// Index into the campaign's participant list.
    pub participant: usize,
    /// Index into the stimulus list.
    pub stimulus: usize,
    /// Whether A was shown on the left for this participant.
    pub a_left: bool,
    /// Behaviour instrumentation.
    pub session: VideoSession,
    /// The verdict; `None` when skipped.
    pub verdict: Option<AbVerdict>,
}

/// A control-question outcome for one participant.
#[derive(Debug, Clone, Copy)]
pub struct ControlRow {
    /// Index into the participant list.
    pub participant: usize,
    /// Whether they answered the control correctly.
    pub passed: bool,
}

/// Raw data of a timeline campaign.
#[derive(Debug, Clone)]
pub struct TimelineCampaign {
    /// Stimulus names, aligned with row indices.
    pub stimuli_names: Vec<String>,
    /// Stimulus durations and onloads are still available through the
    /// retained videos (shared with the capture cache — an `Arc` each,
    /// not a copy).
    pub videos: Vec<Arc<Video>>,
    /// Recruited participants (arrival order).
    pub participants: Vec<Participant>,
    /// Recruitment economics.
    pub recruitment_cost_usd: f64,
    /// Wall time to hit the recruitment target.
    pub recruitment_duration_secs: f64,
    /// All showings.
    pub rows: Vec<TimelineRow>,
    /// Per-participant control outcomes.
    pub controls: Vec<ControlRow>,
}

/// Raw data of an A/B campaign.
#[derive(Debug, Clone)]
pub struct AbCampaign {
    /// Stimulus names.
    pub stimuli_names: Vec<String>,
    /// The A-side videos (kept for Δ analysis; shared, not copied).
    pub a_videos: Vec<Arc<Video>>,
    /// The B-side videos.
    pub b_videos: Vec<Arc<Video>>,
    /// Participants.
    pub participants: Vec<Participant>,
    /// Recruitment economics.
    pub recruitment_cost_usd: f64,
    /// Wall time to hit the recruitment target.
    pub recruitment_duration_secs: f64,
    /// All showings.
    pub rows: Vec<AbRow>,
    /// Per-participant control outcomes.
    pub controls: Vec<ControlRow>,
}

/// Run a timeline campaign: `n` participants from `service` against the
/// given stimuli.
pub fn run_timeline_campaign(
    stimuli: Vec<TimelineStimulus>,
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    seed: Seed,
) -> TimelineCampaign {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.timeline_campaign");
    let threads = resolve_threads(cfg.threads);
    let recruitment: Recruitment = service.recruit(seed.derive("recruit"), n_participants);
    // Hard rules first: the humanness gate turns scripts away before any
    // response is collected (§3.3).
    let gate = crate::validation::captcha_gate(recruitment.participants);
    let mut rows = Vec::new();
    let mut controls = Vec::new();
    // Branch on the pool that will actually run (an oversubscribed
    // request degrades to 1 worker on small machines): the sequential
    // engine computes rewinds lazily, so taking it when no real
    // parallelism is available avoids the parallel engine's eager
    // precompute. Output is byte-identical either way.
    if effective_pool(threads) <= 1 {
        // The sequential engine: one memoising timeline per stimulus,
        // rewinds computed lazily as participants touch frames.
        let mut frames: Vec<FrameTimeline> =
            stimuli.iter().map(|s| FrameTimeline::of(&s.video)).collect();
        for (pi, participant) in gate.admitted.iter().enumerate() {
            let picks = assign(
                seed.derive("timeline"),
                pi as u64,
                stimuli.len(),
                cfg.videos_per_participant,
            );
            for &si in &picks {
                let label = format!("tl-{si}");
                let video = &stimuli[si].video;
                let session =
                    behavior::video_session(video, participant, TestKind::Timeline, &label);
                let response = if session.skipped {
                    None
                } else {
                    Some(eyeorg_crowd::timeline_response_cached(
                        video,
                        &mut frames[si],
                        participant,
                        &label,
                    ))
                };
                rows.push(TimelineRow { participant: pi, stimulus: si, session, response });
            }
            if cfg.with_controls {
                // The control reuses one of the participant's videos with
                // a nearly-blank rewind suggestion (Fig. 3b).
                let ctrl_video = picks[0];
                let passed = timeline_control_passes(participant, &format!("tl-{ctrl_video}"));
                controls.push(ControlRow { participant: pi, passed });
            }
        }
    } else {
        // The parallel engine. Materialise one immutable timeline per
        // stimulus with the rewind table filled up front, so participant
        // workers share them read-only; the rewind scan is pure, so the
        // table holds exactly the values the lazy path would compute.
        let frames: Vec<FrameTimeline> = par_map_range(stimuli.len(), threads, |si| {
            let mut tl = FrameTimeline::of(&stimuli[si].video);
            tl.precompute_rewinds();
            tl
        });
        // Every response draws only from the participant's own derived
        // seed streams, so participants are independent work items;
        // merging in participant index order makes the row list
        // byte-identical to the sequential engine.
        let per_participant = par_map_range(gate.admitted.len(), threads, |pi| {
            let participant = &gate.admitted[pi];
            let picks = assign(
                seed.derive("timeline"),
                pi as u64,
                stimuli.len(),
                cfg.videos_per_participant,
            );
            let mut p_rows = Vec::with_capacity(picks.len());
            for &si in &picks {
                let label = format!("tl-{si}");
                let video = &stimuli[si].video;
                let session =
                    behavior::video_session(video, participant, TestKind::Timeline, &label);
                let response = if session.skipped {
                    None
                } else {
                    Some(timeline_response_shared(video, &frames[si], participant, &label))
                };
                p_rows.push(TimelineRow { participant: pi, stimulus: si, session, response });
            }
            let control = cfg.with_controls.then(|| {
                let ctrl_video = picks[0];
                let passed = timeline_control_passes(participant, &format!("tl-{ctrl_video}"));
                ControlRow { participant: pi, passed }
            });
            (p_rows, control)
        });
        for (p_rows, control) in per_participant {
            rows.extend(p_rows);
            controls.extend(control);
        }
    }
    if eyeorg_obs::enabled() {
        // Row assembly is engine-independent (the parallel merge is
        // order-pinned), so these totals are too.
        let collected = rows.iter().filter(|r| r.response.is_some()).count() as u64;
        eyeorg_obs::metrics::CORE_RESPONSES_COLLECTED.add(collected);
        eyeorg_obs::metrics::CORE_RESPONSES_SKIPPED.add(rows.len() as u64 - collected);
    }
    TimelineCampaign {
        stimuli_names: stimuli.iter().map(|s| s.name.clone()).collect(),
        videos: stimuli.into_iter().map(|s| s.video).collect(),
        participants: gate.admitted,
        recruitment_cost_usd: recruitment.cost_usd,
        recruitment_duration_secs: recruitment
            .arrivals
            .last()
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        rows,
        controls,
    }
}

/// Run an A/B campaign.
pub fn run_ab_campaign(
    stimuli: Vec<AbStimulus>,
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    seed: Seed,
) -> AbCampaign {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.ab_campaign");
    let threads = resolve_threads(cfg.threads);
    let recruitment: Recruitment = service.recruit(seed.derive("recruit"), n_participants);
    let gate = crate::validation::captcha_gate(recruitment.participants);

    // Participants are independent work items (see the timeline
    // campaign); merge order pins the sequential row layout. The
    // assignment and presentation-order draws use distinct seed labels —
    // "ab-assign" vs "ab-side" — so the two streams never collide.
    let per_participant = par_map_range(gate.admitted.len(), threads, |pi| {
        let participant = &gate.admitted[pi];
        let picks = assign(
            seed.derive("ab-assign"),
            pi as u64,
            stimuli.len(),
            cfg.videos_per_participant,
        );
        let mut p_rows = Vec::with_capacity(picks.len());
        for &si in &picks {
            let label = format!("ab-{si}");
            let a_left = a_on_left(seed.derive("ab-side"), pi as u64, si);
            let s = &stimuli[si];
            // The spliced video the participant downloads covers both
            // sides; behaviour is driven by the longer capture.
            let longer =
                if s.a.duration() >= s.b.duration() { &s.a } else { &s.b };
            let session = behavior::video_session(longer, participant, TestKind::Ab, &label);
            let verdict = if session.skipped {
                None
            } else {
                let (left, right) =
                    if a_left { (&s.a, &s.b) } else { (&s.b, &s.a) };
                let answer = eyeorg_crowd::ab_response(left, right, participant, &label);
                Some(match (answer, a_left) {
                    (AbAnswer::NoDifference, _) => AbVerdict::NoDifference,
                    (AbAnswer::Left, true) | (AbAnswer::Right, false) => AbVerdict::AFaster,
                    (AbAnswer::Left, false) | (AbAnswer::Right, true) => AbVerdict::BFaster,
                })
            };
            p_rows.push(AbRow { participant: pi, stimulus: si, a_left, session, verdict });
        }
        let control = cfg.with_controls.then(|| {
            let ctrl = picks[0];
            let (_, passed) = ab_control(&stimuli[ctrl].a, participant, &format!("ab-{ctrl}"));
            ControlRow { participant: pi, passed }
        });
        (p_rows, control)
    });
    let mut rows = Vec::new();
    let mut controls = Vec::new();
    for (p_rows, control) in per_participant {
        rows.extend(p_rows);
        controls.extend(control);
    }
    if eyeorg_obs::enabled() {
        let votes = rows.iter().filter(|r| r.verdict.is_some()).count() as u64;
        eyeorg_obs::metrics::CORE_AB_VOTES.add(votes);
        eyeorg_obs::metrics::CORE_AB_SKIPS.add(rows.len() as u64 - votes);
    }
    AbCampaign {
        stimuli_names: stimuli.iter().map(|s| s.name.clone()).collect(),
        a_videos: stimuli.iter().map(|s| s.a.clone()).collect(),
        b_videos: stimuli.into_iter().map(|s| s.b).collect(),
        participants: gate.admitted,
        recruitment_cost_usd: recruitment.cost_usd,
        recruitment_duration_secs: recruitment
            .arrivals
            .last()
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        rows,
        controls,
    }
}

/// Sessions of one participant within a campaign, in presentation order.
pub fn sessions_of(rows: &[TimelineRow], participant: usize) -> Vec<VideoSession> {
    rows.iter().filter(|r| r.participant == participant).map(|r| r.session).collect()
}

/// Same for A/B rows.
pub fn ab_sessions_of(rows: &[AbRow], participant: usize) -> Vec<VideoSession> {
    rows.iter().filter(|r| r.participant == participant).map(|r| r.session).collect()
}

/// Convenience: when a timeline row carries a response, its submitted
/// `UserPerceivedPLT` in seconds.
pub fn submitted_uplt(row: &TimelineRow) -> Option<f64> {
    row.response.map(|r| r.submitted.as_secs_f64())
}

/// A stable wall-clock anchor for a campaign (campaigns start at t = 0 of
/// their own clock; arrival offsets come from the recruitment model).
pub const CAMPAIGN_START: SimTime = SimTime::ZERO;
