//! Count-aware waiver: one line carries two findings, one n=2 waiver.

// lint:allow(D1, n=2): both maps drain into sorted Vecs before anything reads them
pub fn pair() -> (std::collections::HashMap<u32, u32>, std::collections::HashMap<u32, u32>) {
    Default::default()
}
