//! HTTP/2 multiplexing building blocks.
//!
//! HTTP/2 runs every request to an origin over one TCP connection as
//! prioritised *streams* whose DATA frames interleave. The pieces that
//! matter to the paper's H1-vs-H2 campaign:
//!
//! * **one slow start** shared by all requests (faster for many small
//!   objects, but a single loss event stalls everything — transport-level
//!   head-of-line blocking);
//! * **prioritised interleaving** — critical resources get more of the
//!   connection's bandwidth ([`H2Scheduler`], deficit round robin over
//!   stream weights);
//! * **HPACK** header compression ([`crate::hpack`]);
//! * **framing overhead** — 9 bytes per frame, ≤16 KiB payloads.
//!
//! The server's write order is decided incrementally: the engine keeps at
//! most a write-window of bytes inside the transport and tops it up from
//! the scheduler as delivery progresses, which is what lets a
//! late-arriving high-priority response overtake a bulky low-priority one
//! mid-flight (as a real server's bounded socket buffer does).
//!
//! [`ChunkMap`] records the composition of the connection's downlink byte
//! stream so cumulative delivery from the transport can be attributed
//! back to individual streams.

use std::collections::VecDeque;

use crate::request::RequestId;

/// Maximum DATA/HEADERS frame payload (RFC 7540 default `SETTINGS_MAX_FRAME_SIZE`).
pub const MAX_FRAME_PAYLOAD: u64 = 16_384;

/// Bytes of frame header per frame.
pub const FRAME_OVERHEAD: u64 = 9;

/// What part of a response a chunk carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Response HEADERS block bytes.
    Header,
    /// Response DATA bytes.
    Body,
}

/// One scheduled frame in the downlink stream: `overhead` bytes of frame
/// header followed by `payload` bytes belonging to `id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Stream (request) the payload belongs to.
    pub id: RequestId,
    /// Frame-header bytes preceding the payload.
    pub overhead: u64,
    /// Payload bytes.
    pub payload: u64,
    /// Header or body payload.
    pub kind: ChunkKind,
}

/// A send-side stream with response data still to be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H2SendStream {
    /// Stream identity.
    pub id: RequestId,
    /// HEADERS block bytes not yet written (HPACK-compressed size).
    pub header_remaining: u64,
    /// Body bytes not yet written.
    pub body_remaining: u64,
    /// Stream weight (from [`crate::request::Priority::h2_weight`]).
    pub weight: u32,
}

impl H2SendStream {
    /// A stream ready to send `header` + `body` bytes at `weight`.
    pub fn new(id: RequestId, header: u64, body: u64, weight: u32) -> H2SendStream {
        H2SendStream { id, header_remaining: header, body_remaining: body, weight }
    }

    fn remaining(&self) -> u64 {
        self.header_remaining + self.body_remaining
    }
}

/// Prioritised scheduler over the ready streams of one connection.
///
/// Chrome (the browser webpeg drove) builds *exclusive dependency
/// chains*: within a priority class, each stream depends on the one
/// before it, so servers serve same-priority responses **sequentially in
/// request order** and higher classes pre-empt lower ones entirely. The
/// scheduler reproduces exactly that: strict priority by weight, FIFO
/// within a weight class, one ≤16 KiB frame at a time. (Fair round-robin
/// within a class — what a weight-only reading of RFC 7540 produces —
/// makes every image finish simultaneously late and erases HTTP/2's
/// time-to-content advantage; Chrome's chains exist precisely to avoid
/// that.)
#[derive(Debug, Default)]
pub struct H2Scheduler {
    streams: Vec<H2SendStream>,
}

impl H2Scheduler {
    /// An empty scheduler.
    pub fn new() -> H2Scheduler {
        H2Scheduler::default()
    }

    /// Register a stream with response bytes ready at the server.
    pub fn add_stream(&mut self, stream: H2SendStream) {
        self.streams.push(stream);
    }

    /// Whether any stream still has unwritten bytes.
    pub fn has_pending(&self) -> bool {
        self.streams.iter().any(|s| s.remaining() > 0)
    }

    /// Total unwritten bytes across streams.
    pub fn pending_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.remaining()).sum()
    }

    /// Produce the next frame, with payload capped at `max_payload`
    /// (usually the remaining write window). Returns `None` when nothing
    /// is pending or `max_payload` is zero.
    ///
    /// Headers always precede body bytes within a stream, and a frame
    /// never mixes the two (HEADERS and DATA are distinct frame types).
    pub fn next_chunk(&mut self, max_payload: u64) -> Option<Chunk> {
        if max_payload == 0 {
            return None;
        }
        // Highest weight first; FIFO (insertion order) within a weight.
        let idx = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.remaining() > 0)
            .max_by(|(ia, a), (ib, b)| a.weight.cmp(&b.weight).then(ib.cmp(ia)))
            .map(|(i, _)| i)?;
        let s = &mut self.streams[idx];
        if s.header_remaining > 0 {
            let payload = s.header_remaining.min(max_payload.max(1)).min(MAX_FRAME_PAYLOAD);
            s.header_remaining -= payload;
            return Some(Chunk {
                id: s.id,
                overhead: FRAME_OVERHEAD,
                payload,
                kind: ChunkKind::Header,
            });
        }
        let payload = s.body_remaining.min(max_payload).min(MAX_FRAME_PAYLOAD);
        s.body_remaining -= payload;
        Some(Chunk { id: s.id, overhead: FRAME_OVERHEAD, payload, kind: ChunkKind::Body })
    }
}

/// Attribution result for newly delivered downlink bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Stream receiving payload.
    pub id: RequestId,
    /// Payload kind.
    pub kind: ChunkKind,
    /// Newly delivered payload bytes of this chunk (excludes framing).
    pub payload_delta: u64,
}

/// The composition of a connection's downlink byte stream, in write
/// order, used to map cumulative transport delivery back to streams.
#[derive(Debug, Default)]
pub struct ChunkMap {
    chunks: VecDeque<Chunk>,
    /// Absolute stream offset up to which bytes have been attributed.
    attributed: u64,
    /// Absolute offset at which the current front chunk began.
    front_start: u64,
}

impl ChunkMap {
    /// An empty map.
    pub fn new() -> ChunkMap {
        ChunkMap::default()
    }

    /// Record a chunk appended to the downlink stream. Returns the chunk's
    /// total on-wire size (overhead + payload) for the caller to hand to
    /// the transport.
    pub fn push(&mut self, chunk: Chunk) -> u64 {
        let size = chunk.overhead + chunk.payload;
        self.chunks.push_back(chunk);
        size
    }

    /// Attribute delivery progress: `total` is the cumulative downlink
    /// bytes the transport has delivered in order. Returns per-stream
    /// payload deltas in stream order.
    pub fn advance(&mut self, total: u64) -> Vec<Delivery> {
        let mut out: Vec<Delivery> = Vec::new();
        while self.attributed < total {
            let Some(front) = self.chunks.front().copied() else { break };
            let chunk_end = self.front_start + front.overhead + front.payload;
            let payload_start = self.front_start + front.overhead;
            let upto = total.min(chunk_end);
            // Payload delivered within this chunk so far vs before.
            let prev_payload = self.attributed.saturating_sub(payload_start);
            let now_payload = upto.saturating_sub(payload_start);
            let delta = now_payload - prev_payload;
            if delta > 0 {
                // Coalesce with a preceding delta for the same stream/kind.
                match out.last_mut() {
                    Some(d) if d.id == front.id && d.kind == front.kind => {
                        d.payload_delta += delta
                    }
                    _ => out.push(Delivery { id: front.id, kind: front.kind, payload_delta: delta }),
                }
            }
            self.attributed = upto;
            if upto == chunk_end {
                self.front_start = chunk_end;
                self.chunks.pop_front();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_headers_before_body() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 100, 5000, 16));
        let c1 = s.next_chunk(u64::MAX).unwrap();
        assert_eq!(c1.kind, ChunkKind::Header);
        assert_eq!(c1.payload, 100);
        let c2 = s.next_chunk(u64::MAX).unwrap();
        assert_eq!(c2.kind, ChunkKind::Body);
    }

    #[test]
    fn scheduler_strict_priority_preempts() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 0, 100_000, 4)); // low class first
        s.add_stream(H2SendStream::new(RequestId(2), 0, 100_000, 32)); // high class
        let mut first_done_order = Vec::new();
        let mut remaining = [100_000u64; 2];
        while let Some(c) = s.next_chunk(u64::MAX) {
            let i = (c.id.0 - 1) as usize;
            remaining[i] -= c.payload;
            if remaining[i] == 0 {
                first_done_order.push(c.id);
            }
        }
        // The heavier stream finishes entirely before the lighter one
        // gets a byte of further service.
        assert_eq!(first_done_order, vec![RequestId(2), RequestId(1)]);
    }

    #[test]
    fn scheduler_fifo_within_class() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 0, 50_000, 6));
        s.add_stream(H2SendStream::new(RequestId(2), 0, 50_000, 6));
        // All of stream 1's frames precede stream 2's (exclusive chain).
        let mut seen2 = false;
        while let Some(c) = s.next_chunk(u64::MAX) {
            if c.id == RequestId(2) {
                seen2 = true;
            } else {
                assert!(!seen2, "stream 1 frame after stream 2 started");
            }
        }
    }

    #[test]
    fn scheduler_respects_frame_and_window_caps() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 0, 1_000_000, 32));
        let c = s.next_chunk(u64::MAX).unwrap();
        assert_eq!(c.payload, MAX_FRAME_PAYLOAD);
        let c2 = s.next_chunk(100).unwrap();
        assert!(c2.payload <= 100);
    }

    #[test]
    fn scheduler_drains_exactly() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 50, 300, 8));
        s.add_stream(H2SendStream::new(RequestId(2), 60, 0, 8));
        let mut total = 0;
        while let Some(c) = s.next_chunk(u64::MAX) {
            total += c.payload;
        }
        assert_eq!(total, 50 + 300 + 60);
        assert!(!s.has_pending());
        assert_eq!(s.pending_bytes(), 0);
    }

    #[test]
    fn scheduler_zero_window_returns_none() {
        let mut s = H2Scheduler::new();
        s.add_stream(H2SendStream::new(RequestId(1), 10, 10, 8));
        assert!(s.next_chunk(0).is_none());
    }

    #[test]
    fn chunk_map_attribution_with_overhead() {
        let mut m = ChunkMap::new();
        let sz = m.push(Chunk { id: RequestId(1), overhead: 9, payload: 100, kind: ChunkKind::Header });
        assert_eq!(sz, 109);
        // First 5 bytes: all framing, no payload.
        assert!(m.advance(5).is_empty());
        // Through byte 59: 50 payload bytes.
        let d = m.advance(59);
        assert_eq!(d, vec![Delivery { id: RequestId(1), kind: ChunkKind::Header, payload_delta: 50 }]);
        // Rest of the chunk.
        let d = m.advance(109);
        assert_eq!(d[0].payload_delta, 50);
    }

    #[test]
    fn chunk_map_interleaved_streams() {
        let mut m = ChunkMap::new();
        m.push(Chunk { id: RequestId(1), overhead: 9, payload: 100, kind: ChunkKind::Body });
        m.push(Chunk { id: RequestId(2), overhead: 9, payload: 50, kind: ChunkKind::Body });
        m.push(Chunk { id: RequestId(1), overhead: 9, payload: 100, kind: ChunkKind::Body });
        let d = m.advance(9 + 100 + 9 + 50 + 9 + 10);
        assert_eq!(
            d,
            vec![
                Delivery { id: RequestId(1), kind: ChunkKind::Body, payload_delta: 100 },
                Delivery { id: RequestId(2), kind: ChunkKind::Body, payload_delta: 50 },
                Delivery { id: RequestId(1), kind: ChunkKind::Body, payload_delta: 10 },
            ]
        );
    }

    #[test]
    fn chunk_map_coalesces_same_stream_chunks() {
        let mut m = ChunkMap::new();
        m.push(Chunk { id: RequestId(1), overhead: 0, payload: 10, kind: ChunkKind::Body });
        m.push(Chunk { id: RequestId(1), overhead: 0, payload: 10, kind: ChunkKind::Body });
        let d = m.advance(20);
        assert_eq!(d, vec![Delivery { id: RequestId(1), kind: ChunkKind::Body, payload_delta: 20 }]);
    }

    #[test]
    fn chunk_map_idempotent_on_stale_totals() {
        let mut m = ChunkMap::new();
        m.push(Chunk { id: RequestId(1), overhead: 9, payload: 10, kind: ChunkKind::Body });
        m.advance(19);
        assert!(m.advance(19).is_empty());
        assert!(m.advance(5).is_empty());
    }
}
