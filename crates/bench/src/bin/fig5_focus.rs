//! Regenerate Figure 5 (out-of-focus time vs video load time).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let v = eyeorg_bench::campaigns::build_validation(&scale);
    let report = eyeorg_bench::fig5_focus::run(&v);
    println!("{report}");
    eyeorg_bench::write_result("fig5.txt", &report);
    let path = eyeorg_bench::write_result("fig5.csv", &eyeorg_bench::fig5_focus::csv(&v));
    eprintln!("wrote {}", path.display());
}
