//! Extension experiment (paper §6 future work): does HTTP/2 server push
//! of render-blocking CSS produce a *perceivable* improvement? A/B
//! campaign: plain HTTP/2 (A) vs HTTP/2 + push (B).
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_metrics::compute_metrics;
use eyeorg_stats::Summary;

fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let seed = scale.seed.derive("ext-push");
    let sites = eyeorg_workload::alexa_like(seed.derive("sites"), scale.sites);
    let stimuli = push_ab_stimuli(
        &sites,
        &eyeorg_bench::campaigns::capture_browser(),
        &scale.capture(),
        seed.derive("cap"),
    );
    // Measured (machine-side) effect on first visual change.
    let fvc_deltas: Vec<f64> = stimuli
        .iter()
        .map(|s| {
            let a = compute_metrics(&s.a).first_visual_change.unwrap().as_secs_f64();
            let b = compute_metrics(&s.b).first_visual_change.unwrap().as_secs_f64();
            a - b // positive → push painted earlier
        })
        .collect();
    let campaign = run_ab_campaign(
        stimuli,
        &CrowdFlower,
        scale.participants,
        &ExperimentConfig::default(),
        seed.derive("run"),
    );
    let report = filter_ab(&campaign, &paper_pipeline());
    let tallies = ab_tallies(&campaign, &report);
    let scores: Vec<f64> = tallies.iter().filter_map(AbTally::score).collect();

    let mut out = String::new();
    out.push_str("=== Extension: HTTP/2 vs HTTP/2 + server push (B = push) ===\n");
    let d = Summary::of(&fvc_deltas).expect("non-empty");
    out.push_str(&format!(
        "machine view: push improves FirstVisualChange by {:.0} ms median ({:.0} ms mean)\n",
        d.median * 1000.0,
        d.mean * 1000.0
    ));
    let s = Summary::of(&scores).expect("non-empty");
    let strong = scores.iter().filter(|&&x| x >= 0.8).count();
    let contested = scores.iter().filter(|&&x| (0.2..=0.8).contains(&x)).count();
    out.push_str(&format!(
        "crowd view: mean score {:.2}; {} of {} sites >=0.8; {} contested\n",
        s.mean,
        strong,
        scores.len(),
        contested
    ));
    out.push_str(
        "(the §5.3 lesson applies: sub-100ms machine wins are largely imperceptible)\n",
    );
    println!("{out}");
    let path = eyeorg_bench::write_result("ext_push.txt", &out);
    eprintln!("wrote {}", path.display());
}
