//! Bottleneck link model.
//!
//! A page load's connections all share the client's access link; the
//! contention between HTTP/1.1's six parallel connections and HTTP/2's
//! single multiplexed one happens *here*, which is why the link is a
//! first-class component rather than a per-connection delay constant.
//!
//! [`LinkQueue`] models one direction of a link as a FIFO serialiser with
//! a bounded drop-tail queue — the classic bufferbloat-era access-link
//! abstraction. A packet handed to the queue at time `t` begins
//! transmission when the transmitter frees up, occupies it for
//! `size / rate`, then propagates for the link's one-way delay.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Outcome of offering a packet to a [`LinkQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The packet will arrive at the far end at this time.
    Delivered(SimTime),
    /// The queue was full; drop-tail discarded the packet.
    Dropped,
}

/// One direction of a link: `rate_bps` serialisation, `prop_delay`
/// propagation, and a drop-tail buffer of at most `queue_limit` packets
/// queued (a packet currently in transmission does not count against the
/// limit).
#[derive(Debug, Clone)]
pub struct LinkQueue {
    rate_bps: u64,
    prop_delay: SimDuration,
    queue_limit: usize,
    /// Departure times (end of serialisation) of packets that have been
    /// accepted but whose serialisation has not finished. Kept sorted by
    /// construction (FIFO), so expired entries are pruned from the front
    /// in O(1) per departed packet.
    in_flight_departures: VecDeque<SimTime>,
    /// Time the transmitter becomes free.
    busy_until: SimTime,
    /// Counters for diagnostics and tests.
    accepted: u64,
    dropped: u64,
}

impl LinkQueue {
    /// Create a link direction.
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero; an unusable link is a config error.
    pub fn new(rate_bps: u64, prop_delay: SimDuration, queue_limit: usize) -> LinkQueue {
        assert!(rate_bps > 0, "link rate must be positive");
        LinkQueue {
            rate_bps,
            prop_delay,
            queue_limit,
            in_flight_departures: VecDeque::new(),
            busy_until: SimTime::ZERO,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offer a packet of `bytes` to the link at time `now`.
    ///
    /// Returns the delivery time at the far end, or [`Transmit::Dropped`]
    /// when the buffer is full. `now` must be monotonically non-decreasing
    /// across calls (enforced in debug builds only, for speed).
    pub fn offer(&mut self, now: SimTime, bytes: u64) -> Transmit {
        // Lazily prune packets that have already finished serialising;
        // departures are FIFO-sorted, so only the front can have expired.
        while self.in_flight_departures.front().is_some_and(|&d| d <= now) {
            self.in_flight_departures.pop_front();
        }
        // Packets *waiting* (not yet begun transmission) = those whose
        // serialisation has not started; conservatively approximate the
        // occupancy as all unfinished packets minus the one on the wire.
        let queued = self.in_flight_departures.len().saturating_sub(1);
        if queued >= self.queue_limit {
            self.dropped += 1;
            return Transmit::Dropped;
        }
        let start = self.busy_until.max(now);
        let departure = start + SimDuration::serialization(bytes, self.rate_bps);
        self.busy_until = departure;
        self.in_flight_departures.push_back(departure);
        self.accepted += 1;
        Transmit::Delivered(departure + self.prop_delay)
    }

    /// Current queueing delay a new packet would experience before its
    /// serialisation begins.
    pub fn queueing_delay(&self, now: SimTime) -> SimDuration {
        if self.busy_until > now {
            self.busy_until.since(now)
        } else {
            SimDuration::ZERO
        }
    }

    /// One-way propagation delay.
    pub fn prop_delay(&self) -> SimDuration {
        self.prop_delay
    }

    /// Configured rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Packets accepted since creation.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Packets dropped by the bounded buffer since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: u64) -> u64 {
        m * 1_000_000
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_prop() {
        let mut l = LinkQueue::new(mbps(10), SimDuration::from_millis(20), 64);
        // 1460B at 10Mbps = 1168µs; + 20ms prop.
        match l.offer(SimTime::ZERO, 1460) {
            Transmit::Delivered(t) => assert_eq!(t.as_micros(), 1168 + 20_000),
            Transmit::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut l = LinkQueue::new(mbps(10), SimDuration::ZERO, 64);
        let t1 = match l.offer(SimTime::ZERO, 1460) {
            Transmit::Delivered(t) => t,
            _ => panic!(),
        };
        let t2 = match l.offer(SimTime::ZERO, 1460) {
            Transmit::Delivered(t) => t,
            _ => panic!(),
        };
        assert_eq!(t2.as_micros(), 2 * t1.as_micros());
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = LinkQueue::new(mbps(10), SimDuration::ZERO, 64);
        l.offer(SimTime::ZERO, 1460);
        // Offer the next packet long after the first finished.
        let late = SimTime::from_millis(100);
        match l.offer(late, 1460) {
            Transmit::Delivered(t) => {
                assert_eq!(t.since(late).as_micros(), 1168);
            }
            _ => panic!(),
        }
        assert_eq!(l.queueing_delay(SimTime::from_millis(200)), SimDuration::ZERO);
    }

    #[test]
    fn drop_tail_when_buffer_full() {
        let mut l = LinkQueue::new(mbps(1), SimDuration::ZERO, 2);
        // One on the wire + 2 queued fit; the 4th must drop.
        for _ in 0..3 {
            assert!(matches!(l.offer(SimTime::ZERO, 1460), Transmit::Delivered(_)));
        }
        assert_eq!(l.offer(SimTime::ZERO, 1460), Transmit::Dropped);
        assert_eq!(l.accepted(), 3);
        assert_eq!(l.dropped(), 1);
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut l = LinkQueue::new(mbps(1), SimDuration::ZERO, 2);
        for _ in 0..3 {
            l.offer(SimTime::ZERO, 1460);
        }
        assert_eq!(l.offer(SimTime::ZERO, 1460), Transmit::Dropped);
        // After all three serialise (3 * 11.68ms), the queue is empty again.
        let later = SimTime::from_millis(40);
        assert!(matches!(l.offer(later, 1460), Transmit::Delivered(_)));
    }

    #[test]
    fn queueing_delay_reflects_backlog() {
        let mut l = LinkQueue::new(mbps(1), SimDuration::ZERO, 64);
        l.offer(SimTime::ZERO, 1460); // 11.68 ms serialisation
        let d = l.queueing_delay(SimTime::ZERO);
        assert_eq!(d.as_micros(), 11_680);
    }
}
