//! webpeg: the capture orchestrator.
//!
//! §3.2: "For each experiment configuration, we repeat each load five
//! times and use the video with the median onload time." This module
//! wraps the browser + capture pipeline exactly that way: fresh browser
//! state per load (a new seeded loader), repeated loads, median
//! selection.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use eyeorg_browser::{load_page, BrowserConfig, LoadTrace};
use eyeorg_net::SimDuration;
use eyeorg_stats::Seed;
use eyeorg_workload::Website;

use crate::capture::Video;

/// Capture settings for a webpeg run.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// Frames per second of the recording.
    pub fps: u32,
    /// Recording continues this long after onload.
    pub record_after: SimDuration,
    /// Number of repeated loads per configuration.
    pub repeats: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        // The paper records at video rate and repeats each load 5 times.
        CaptureConfig { fps: 10, record_after: SimDuration::from_secs(5), repeats: 5 }
    }
}

/// Perform `repeats` loads of `site` and return every trace, in load
/// order. Each load uses an independent derived seed — fresh browser
/// state, fresh network draws — exactly like webpeg deleting Chrome's
/// local state between loads.
pub fn capture_all(
    site: &Website,
    browser: &BrowserConfig,
    seed: Seed,
    capture: &CaptureConfig,
) -> Vec<LoadTrace> {
    (0..capture.repeats)
        .map(|i| load_page(site, browser, seed.derive_index("load", i as u64)))
        .collect()
}

/// Capture the site and keep the load with the **median onload time**,
/// returning its video.
///
/// # Panics
/// Panics if `repeats` is zero.
pub fn capture_median(
    site: &Website,
    browser: &BrowserConfig,
    seed: Seed,
    capture: &CaptureConfig,
) -> Video {
    assert!(capture.repeats > 0, "at least one load required");
    let traces = capture_all(site, browser, seed, capture);
    let median = select_median_onload(traces);
    Video::capture(median, capture.fps, capture.record_after)
}

/// Cache key of one capture: fingerprints of everything that determines
/// the resulting video. `capture_median` is a pure function of these
/// four values — the browser fingerprint covers the network profile,
/// protocol, and ad-blocker settings via its `Debug` form — so equal
/// keys always map to bit-identical videos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CaptureKey {
    site: u64,
    browser: u64,
    capture: u64,
    seed: u64,
}

/// FNV-1a over a `Debug` rendering: the configuration structs carry
/// `f64` fields, which rules out deriving `Hash`, but their `Debug`
/// output is a complete, deterministic description of their state.
fn debug_fingerprint<T: std::fmt::Debug>(value: &T) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{value:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A keyed store of finished captures, shared across builder calls.
///
/// Campaign builders capture the same (site, browser, seed) triple more
/// than once — most notably the with-ads baseline of the ad-blocker
/// study, which every blocker's A side repeats. Captures are pure, so a
/// map lookup is transparent; the `Mutex` makes the cache usable from
/// the parallel capture fan-out (held only around map access, never
/// during a capture). Each key maps to a per-key [`OnceLock`] cell, so
/// concurrent requests for the *same* key compute exactly once (late
/// arrivals block on the winner inside `get_or_init`) while misses on
/// *different* keys proceed in parallel. That once-per-key guarantee
/// also makes the hit/miss observability counters deterministic: misses
/// equal the number of distinct keys regardless of thread interleaving.
///
/// The map is a `BTreeMap` rather than a hash map: iteration order is
/// part of the workspace's determinism contract (rule D1), and the cache
/// stays small enough (one entry per distinct capture configuration)
/// that the asymptotic difference is irrelevant.
#[derive(Debug, Default)]
pub struct CaptureCache {
    map: Mutex<BTreeMap<CaptureKey, Arc<OnceLock<Arc<Video>>>>>,
}

impl CaptureCache {
    /// An empty cache.
    pub fn new() -> CaptureCache {
        CaptureCache::default()
    }

    /// Number of cached captures.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache holds no captures.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached capture (used by benchmarks that must time
    /// cold captures).
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }

    /// [`capture_median`] through the cache: returns the stored video
    /// when this exact configuration was captured before, otherwise
    /// captures (outside the lock — the per-key cell serialises racing
    /// misses on the same key so the capture runs exactly once, and
    /// every caller sharing a key holds the *same* allocation) and
    /// stores the result.
    ///
    /// Hits hand out an [`Arc`] clone — a refcount bump, not a copy of
    /// the trace — so stimulus builders can share one capture across an
    /// entire campaign for free.
    pub fn capture_median(
        &self,
        site: &Website,
        browser: &BrowserConfig,
        seed: Seed,
        capture: &CaptureConfig,
    ) -> Arc<Video> {
        let key = CaptureKey {
            site: debug_fingerprint(site),
            browser: debug_fingerprint(browser),
            capture: debug_fingerprint(capture),
            seed: seed.value(),
        };
        let (cell, inserted) = {
            let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match map.entry(key) {
                std::collections::btree_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::btree_map::Entry::Vacant(e) => {
                    (Arc::clone(e.insert(Arc::new(OnceLock::new()))), true)
                }
            }
        };
        eyeorg_obs::metrics::VIDEO_CACHE_REQUESTS.incr();
        if inserted {
            eyeorg_obs::metrics::VIDEO_CACHE_MISSES.incr();
        } else {
            eyeorg_obs::metrics::VIDEO_CACHE_HITS.incr();
        }
        Arc::clone(cell.get_or_init(|| Arc::new(capture_median(site, browser, seed, capture))))
    }
}

/// The process-wide capture cache the stimulus builders share.
pub fn shared_capture_cache() -> &'static CaptureCache {
    static CACHE: OnceLock<CaptureCache> = OnceLock::new();
    CACHE.get_or_init(CaptureCache::new)
}

/// Pick the trace with the median onload from a set of loads (ties and
/// even counts resolve to the lower middle, as an index-based median of
/// sorted onloads).
fn select_median_onload(mut traces: Vec<LoadTrace>) -> LoadTrace {
    assert!(!traces.is_empty());
    traces.sort_by_key(|t| t.onload.map(|o| o.as_micros()).unwrap_or(u64::MAX));
    let mid = (traces.len() - 1) / 2;
    traces.swap_remove(mid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    #[test]
    fn median_selection_picks_middle_onload() {
        let site = generate_site(Seed(5), 0, SiteClass::Blog);
        let cfg = CaptureConfig { repeats: 5, ..CaptureConfig::default() };
        let traces = capture_all(&site, &BrowserConfig::new(), Seed(7), &cfg);
        assert_eq!(traces.len(), 5);
        let mut onloads: Vec<u64> =
            traces.iter().map(|t| t.onload.unwrap().as_micros()).collect();
        onloads.sort_unstable();
        let video = capture_median(&site, &BrowserConfig::new(), Seed(7), &cfg);
        assert_eq!(video.trace().onload.unwrap().as_micros(), onloads[2]);
    }

    #[test]
    fn repeated_loads_differ_but_are_reproducible() {
        let site = generate_site(Seed(6), 1, SiteClass::News);
        let cfg = CaptureConfig { repeats: 3, ..CaptureConfig::default() };
        let a = capture_all(&site, &BrowserConfig::new(), Seed(8), &cfg);
        let b = capture_all(&site, &BrowserConfig::new(), Seed(8), &cfg);
        assert_eq!(a, b, "same seed, same captures");
        // Within a run, loads see different network draws.
        assert!(
            a[0].onload != a[1].onload || a[1].onload != a[2].onload,
            "independent loads should differ"
        );
    }

    #[test]
    fn cache_returns_identical_video_for_repeated_key() {
        let site = generate_site(Seed(9), 2, SiteClass::Ecommerce);
        let cfg = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
        let browser = BrowserConfig::new();
        let cache = CaptureCache::new();
        let first = cache.capture_median(&site, &browser, Seed(11), &cfg);
        assert_eq!(cache.len(), 1);
        let second = cache.capture_median(&site, &browser, Seed(11), &cfg);
        assert_eq!(cache.len(), 1, "repeat key must not grow the cache");
        assert!(Arc::ptr_eq(&first, &second), "hits share one allocation, no copy");
        assert_eq!(first.trace(), second.trace(), "cache must return the stored capture");
        // The cached video equals what an uncached capture produces.
        let direct = capture_median(&site, &browser, Seed(11), &cfg);
        assert_eq!(first.trace(), direct.trace());
    }

    #[test]
    fn cache_distinguishes_every_key_component() {
        let site_a = generate_site(Seed(9), 2, SiteClass::Ecommerce);
        let site_b = generate_site(Seed(9), 3, SiteClass::Ecommerce);
        let cfg = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
        let cfg_4 = CaptureConfig { repeats: 4, ..CaptureConfig::default() };
        let browser = BrowserConfig::new();
        let shaped = BrowserConfig::new().with_network(eyeorg_net::NetworkProfile::fttc());
        let cache = CaptureCache::new();
        cache.capture_median(&site_a, &browser, Seed(11), &cfg);
        cache.capture_median(&site_b, &browser, Seed(11), &cfg); // site differs
        cache.capture_median(&site_a, &shaped, Seed(11), &cfg); // network differs
        cache.capture_median(&site_a, &browser, Seed(12), &cfg); // seed differs
        cache.capture_median(&site_a, &browser, Seed(11), &cfg_4); // capture cfg differs
        assert_eq!(cache.len(), 5, "each configuration gets its own entry");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one load")]
    fn zero_repeats_rejected() {
        let site = generate_site(Seed(5), 0, SiteClass::Blog);
        let cfg = CaptureConfig { repeats: 0, ..CaptureConfig::default() };
        capture_median(&site, &BrowserConfig::new(), Seed(7), &cfg);
    }
}
