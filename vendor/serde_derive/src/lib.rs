//! Derive macros for the in-repo serde stand-in.
//!
//! No `syn`/`quote` (the build is offline), so the input item is parsed
//! directly from `proc_macro::TokenTree`s. Supported shapes — exactly
//! what the workspace uses:
//!
//! * structs with named fields (field-level `#[serde(rename = "...")]`);
//! * tuple structs (newtypes serialize as their inner value, wider
//!   tuples as arrays);
//! * enums with unit variants (serialized as the variant-name string),
//!   struct variants and tuple variants (externally tagged, like serde).
//!
//! Generics, lifetimes and container-level attributes are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: Rust identifier + JSON key (after rename).
struct Field {
    ident: String,
    json: String,
}

enum VariantBody {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    ident: String,
    body: VariantBody,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Skip any attributes (`#[...]`) at `*i`, returning a rename captured
/// from `#[serde(rename = "...")]` if present among them.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut rename = None;
    while *i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        if let Some(r) = parse_serde_rename(&g.stream()) {
            rename = Some(r);
        }
        *i += 2;
    }
    rename
}

/// Extract `rename = "..."` from the contents of a `#[serde(...)]`
/// attribute, if this bracket group is one.
fn parse_serde_rename(stream: &TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if key.to_string() == "rename" && eq.as_char() == '=' =>
                {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                _ => panic!("serde stand-in supports only #[serde(rename = \"...\")], got {args}"),
            }
        }
        _ => None,
    }
}

/// Skip an optional `pub` / `pub(...)` visibility at `*i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match &tokens[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stand-in: expected identifier, got {other}"),
    }
}

/// Skip a type (everything up to a top-level `,`), tracking `<`/`>`
/// depth so commas inside generic arguments don't terminate early.
/// Consumes the trailing comma when present.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Parse the named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let rename = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let ident = expect_ident(&tokens, &mut i);
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in: expected ':' after field {ident}, got {other}"),
        }
        skip_type(&tokens, &mut i);
        let json = rename.unwrap_or_else(|| ident.clone());
        fields.push(Field { ident, json });
    }
    fields
}

/// Count the fields of a tuple struct/variant (paren group contents).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        n += 1;
        skip_type(&tokens, &mut i);
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ident = expect_ident(&tokens, &mut i);
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { ident, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in does not support generic type {name}");
    }
    let kind = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        _ => panic!("serde stand-in cannot derive for {keyword} {name}"),
    };
    Input { name, kind }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn push_named_fields(out: &mut String, fields: &[Field], accessor: &str) {
    for f in fields {
        out.push_str(&format!(
            "obj.push((\"{json}\".to_string(), ::serde::Serialize::to_value(&{accessor}{ident})));\n",
            json = f.json,
            ident = f.ident,
        ));
    }
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut obj = Vec::new();\n");
            push_named_fields(&mut s, fields, "self.");
            s.push_str("::serde::Value::Object(obj)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vi = &v.ident;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::Value::Str(\"{vi}\".to_string()),\n"
                    )),
                    VariantBody::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.ident.as_str()).collect();
                        let mut inner = String::from("let mut obj = Vec::new();\n");
                        push_named_fields(&mut inner, fields, "");
                        arms.push_str(&format!(
                            "{name}::{vi} {{ {binds} }} => {{\n{inner}\n\
                             ::serde::Value::Object(vec![(\"{vi}\".to_string(), ::serde::Value::Object(obj))])\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vi}({binds}) => ::serde::Value::Object(vec![(\"{vi}\".to_string(), {payload})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_de(fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{ident}: ::serde::Deserialize::from_value({src}.field(\"{json}\"))\
                 .map_err(|e| e.in_field(\"{json}\"))?",
                ident = f.ident,
                json = f.json,
            )
        })
        .collect();
    inits.join(",\n")
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            format!(
                "if v.as_object().is_none() {{\n\
                     return Err(::serde::DeError::expected(\"object\", v));\n\
                 }}\n\
                 Ok({name} {{\n{}\n}})",
                named_fields_de(fields, "v")
            )
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError(format!(\"expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vi = &v.ident;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!("\"{vi}\" => return Ok({name}::{vi}),\n"));
                    }
                    VariantBody::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vi}\" => return Ok({name}::{vi} {{\n{}\n}}),\n",
                            named_fields_de(fields, "payload")
                        ));
                    }
                    VariantBody::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vi}\" => return Ok({name}::{vi}(::serde::Deserialize::from_value(payload)?)),\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vi}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", payload))?;\n\
                             if items.len() != {n} {{\n\
                                 return Err(::serde::DeError(format!(\"expected {n} elements, got {{}}\", items.len())));\n\
                             }}\n\
                             return Ok({name}::{vi}({}));\n}}\n",
                            gets.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{\n{unit_arms}\
                         other => return Err(::serde::DeError(format!(\"unknown variant {{other}} of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some(pairs) = v.as_object() {{\n\
                     if pairs.len() == 1 {{\n\
                         let (tag, payload) = &pairs[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n{tagged_arms}\
                             other => return Err(::serde::DeError(format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"{name} variant\", v))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
