//! # eyeorg-browser
//!
//! The simulated browser: everything webpeg drove a real Chrome for.
//!
//! The paper's capture tool loads pages in Chrome under controlled
//! conditions (protocol, network and device emulation, extensions, cold
//! caches, DNS primer) and extracts the load timeline via the remote
//! debugging protocol. This crate reproduces that pipeline end to end on
//! simulated substrates:
//!
//! * [`config`] — the knob set (protocol, network, device, blockers).
//! * [`loader`] — the page-load engine: preload scanner, parser blocking,
//!   render blocking, progressive paint, script injection, onload.
//! * [`extensions`] — the AdBlock/Ghostery/uBlock models of §5.4.
//! * [`paint`] — paint events, the raw material of videos and metrics.
//! * [`trace`] — [`trace::LoadTrace`], the full record of one load.
//! * [`har`] — HAR 1.2-style export, as webpeg collected per capture.
//!
//! ```
//! use eyeorg_browser::{load_page, BrowserConfig};
//! use eyeorg_stats::Seed;
//! use eyeorg_workload::{generate_site, SiteClass};
//!
//! let site = generate_site(Seed(1), 0, SiteClass::Blog);
//! let trace = load_page(&site, &BrowserConfig::new(), Seed(1));
//! assert!(trace.onload.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod extensions;
pub mod har;
pub mod loader;
pub mod paint;
pub mod trace;

pub use config::{BrowserConfig, CpuCosts, DeviceProfile};
pub use extensions::AdBlocker;
pub use har::{to_har, to_har_json};
pub use loader::{load_page, load_page_reference};
pub use paint::{PaintEvent, PaintKind};
pub use trace::{LoadTrace, ResourceTrace, SkipReason};
