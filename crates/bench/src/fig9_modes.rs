//! Figure 9: the three shapes of `UserPerceivedPLT` distributions.
//!
//! §6 classifies per-site response distributions into tight-unimodal
//! (fast, unambiguous loads), spread-unimodal (long FirstVisualChange →
//! LastVisualChange gap), and multimodal (main-content vs wait-for-ads
//! readiness). The harness classifies every video programmatically and
//! prints a 3-column gallery like the paper's 3×3 grid.

use eyeorg_core::analysis::uplt_samples;
use eyeorg_core::campaign::TimelineCampaign;
use eyeorg_core::viz::response_timeline;
use eyeorg_stats::{classify_shape, DistributionShape, ShapeParams};

use crate::campaigns::Filtered;

pub use eyeorg_stats::modes::ShapeParams as Fig9Params;

/// Classify every video's response distribution.
pub fn classify_all(fin: &Filtered<TimelineCampaign>) -> Vec<Option<DistributionShape>> {
    let samples = uplt_samples(&fin.campaign, &fin.report, None);
    samples
        .iter()
        .map(|s| classify_shape(s, &ShapeParams::default()))
        .collect()
}

/// Build the Fig. 9 report.
pub fn run(fin: &Filtered<TimelineCampaign>) -> String {
    let samples = uplt_samples(&fin.campaign, &fin.report, None);
    let shapes = classify_all(fin);
    let mut out = String::new();
    out.push_str("=== Figure 9: UPLT distribution shapes ===\n");
    let count = |want: DistributionShape| shapes.iter().flatten().filter(|&&s| s == want).count();
    let tight = count(DistributionShape::UnimodalTight);
    let spread = count(DistributionShape::UnimodalSpread);
    let multi = count(DistributionShape::Multimodal);
    out.push_str(&format!(
        "tight unimodal: {tight}   spread unimodal: {spread}   multimodal: {multi}   (of {})\n\n",
        shapes.len()
    ));

    // Gallery: up to three examples per column, as response timelines.
    for (title, want) in [
        ("-- tight unimodal --", DistributionShape::UnimodalTight),
        ("-- spread unimodal --", DistributionShape::UnimodalSpread),
        ("-- multimodal --", DistributionShape::Multimodal),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut shown = 0;
        for (vi, shape) in shapes.iter().enumerate() {
            if *shape == Some(want) && shown < 3 {
                shown += 1;
                let max = fin.campaign.videos[vi].duration().as_secs_f64();
                out.push_str(&format!("n = {}\n", samples[vi].len()));
                out.push_str(&response_timeline(&samples[vi], max, 48, &[]));
            }
        }
        if shown == 0 {
            out.push_str("(no example at this scale)\n");
        }
        out.push('\n');
    }
    out
}
