//! Mode (peak) detection and distribution-shape classification.
//!
//! §6 of the paper ("What Does 'Ready' Mean?") observes that per-site
//! `UserPerceivedPLT` distributions fall into three rough patterns
//! (Fig. 9): a single tight peak (fast, unambiguous loads), a single
//! spread-out peak (long gap between first and last visual change), and
//! multiple peaks (some participants wait for auxiliary content such as
//! ads). This module reproduces that classification so the bench harness
//! can regenerate Fig. 9's three columns programmatically instead of by
//! manual inspection.

use crate::hist::Histogram;

/// The three distribution shapes of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionShape {
    /// One peak, small dispersion relative to its mean ("cut-and-dry"
    /// loads; left column of Fig. 9).
    UnimodalTight,
    /// One peak but wide dispersion (long FirstVisualChange →
    /// LastVisualChange gap; centre column).
    UnimodalSpread,
    /// Two or more distinct peaks (primary- vs auxiliary-content
    /// readiness; right column).
    Multimodal,
}

/// A detected peak in a smoothed histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Bin index of the local maximum.
    pub bin: usize,
    /// Value (x position) at the bin centre.
    pub location: f64,
    /// Smoothed height at the peak.
    pub height: f64,
}

/// Find local maxima in a histogram after moving-average smoothing.
///
/// A bin is a peak when its smoothed height is at least `min_height_frac`
/// of the global maximum, strictly greater than the nearest differing
/// smoothed value on the left, and at least as high as everything until
/// the nearest differing value on the right (plateaus yield their leftmost
/// bin). Peaks closer than `min_separation_bins` to a taller accepted peak
/// are suppressed, which prevents a ragged summit from double-counting.
pub fn find_peaks(
    hist: &Histogram,
    smoothing: usize,
    min_height_frac: f64,
    min_separation_bins: usize,
) -> Vec<Peak> {
    let s = hist.smoothed(smoothing);
    let n = s.len();
    if n == 0 {
        return Vec::new();
    }
    let global_max = s.iter().cloned().fold(0.0_f64, f64::max);
    if global_max <= 0.0 {
        return Vec::new();
    }
    let threshold = global_max * min_height_frac;

    // Candidate peaks: strictly greater than previous differing value,
    // >= until next differing value.
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 0..n {
        if s[i] < threshold {
            continue;
        }
        // Walk left past any plateau; require a strict rise into it.
        let mut l = i;
        while l > 0 && s[l - 1] == s[i] {
            l -= 1;
        }
        // Leftmost of a plateau only (avoid duplicate peaks on plateaus).
        if l != i {
            continue;
        }
        if l > 0 && s[l - 1] >= s[i] {
            continue;
        }
        // Walk right past the plateau; require a fall (or edge).
        let mut r = i;
        while r + 1 < n && s[r + 1] == s[i] {
            r += 1;
        }
        if r + 1 < n && s[r + 1] > s[i] {
            continue;
        }
        candidates.push(Peak { bin: i, location: hist.bin_center(i), height: s[i] });
    }

    // Greedy suppression: keep tallest first, drop anything too close.
    candidates.sort_by(|a, b| b.height.total_cmp(&a.height));
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept.iter().all(|k| c.bin.abs_diff(k.bin) >= min_separation_bins) {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.bin);
    kept
}

/// Parameters of the Fig. 9 shape classifier.
#[derive(Debug, Clone, Copy)]
pub struct ShapeParams {
    /// Moving-average half-width applied before peak detection.
    pub smoothing: usize,
    /// Minimum peak height as a fraction of the tallest peak.
    pub min_height_frac: f64,
    /// Minimum separation between peaks, in bins.
    pub min_separation_bins: usize,
    /// Two neighbouring peaks only count as separate modes when the
    /// smoothed histogram dips, somewhere between them, below this
    /// fraction of the *lower* peak's height. Uniform-ish spread
    /// distributions produce several near-equal local maxima with no real
    /// valley; this test merges them.
    pub valley_frac: f64,
    /// A unimodal distribution is "tight" when its coefficient of
    /// variation (stdev/mean) is at or below this value.
    pub tight_cv: f64,
}

impl Default for ShapeParams {
    fn default() -> Self {
        // Tuned on the synthetic corpus so that the three archetypes in
        // Fig. 9 separate cleanly; see bench/src/bin/fig9_modes.rs.
        ShapeParams {
            smoothing: 1,
            min_height_frac: 0.35,
            min_separation_bins: 3,
            valley_frac: 0.5,
            tight_cv: 0.15,
        }
    }
}

/// Histogram tuned for mode detection: `2·⌈√n⌉` bins over the sample
/// range, clamped to `[8, 64]`. The Freedman–Diaconis rule used by
/// [`Histogram::auto`] deliberately widens bins when the IQR spans several
/// modes, which erases exactly the structure Fig. 9 looks for; a
/// square-root rule keeps enough resolution for valley detection.
pub fn mode_histogram(sample: &[f64]) -> Option<Histogram> {
    if sample.is_empty() {
        return None;
    }
    let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // NaN-safe: degenerate or incomparable range collapses to one bin.
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Histogram::with_bins(sample, lo - 0.5, lo + 0.5, 1);
    }
    let bins = ((sample.len() as f64).sqrt().ceil() as usize * 2).clamp(8, 64);
    Histogram::with_bins(sample, lo, hi, bins)
}

/// Detected modes: [`find_peaks`] candidates with valley validation.
///
/// Adjacent peaks lacking a genuine valley between them (smoothed height
/// dipping below `valley_frac` of the lower peak) are merged, keeping the
/// taller, until the set is stable.
pub fn prominent_peaks(hist: &Histogram, params: &ShapeParams) -> Vec<Peak> {
    let s = hist.smoothed(params.smoothing);
    let mut peaks = find_peaks(hist, params.smoothing, params.min_height_frac, params.min_separation_bins);
    loop {
        let mut merged = false;
        let mut i = 0;
        while i + 1 < peaks.len() {
            let (a, b) = (peaks[i], peaks[i + 1]);
            let valley = s[a.bin..=b.bin].iter().cloned().fold(f64::INFINITY, f64::min);
            if valley > params.valley_frac * a.height.min(b.height) {
                // No real dip between them: merge onto the taller peak.
                let keep = if a.height >= b.height { a } else { b };
                peaks[i] = keep;
                peaks.remove(i + 1);
                merged = true;
            } else {
                i += 1;
            }
        }
        if !merged {
            return peaks;
        }
    }
}

/// Classify a sample of responses into one of the Fig. 9 shapes.
///
/// Returns `None` when the sample is empty or all-identical in a way that
/// defeats histogramming (fewer than 3 observations).
pub fn classify_shape(sample: &[f64], params: &ShapeParams) -> Option<DistributionShape> {
    if sample.len() < 3 {
        return None;
    }
    let hist = mode_histogram(sample)?;
    let peaks = prominent_peaks(&hist, params);
    if peaks.len() >= 2 {
        return Some(DistributionShape::Multimodal);
    }
    let summary = crate::summary::Summary::of(sample)?;
    let cv = summary.cv().unwrap_or(0.0);
    if cv <= params.tight_cv {
        Some(DistributionShape::UnimodalTight)
    } else {
        Some(DistributionShape::UnimodalSpread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5) without pulling in rand:
    /// a Weyl sequence is plenty for spreading test samples across bins.
    fn jitter(i: usize) -> f64 {
        ((i as f64 * 0.754_877_666) % 1.0) - 0.5
    }

    fn tight_sample() -> Vec<f64> {
        (0..60).map(|i| 5.0 + 0.2 * jitter(i)).collect()
    }

    fn spread_sample() -> Vec<f64> {
        (0..60).map(|i| 6.0 + 8.0 * jitter(i)).collect()
    }

    fn bimodal_sample() -> Vec<f64> {
        let mut v: Vec<f64> = (0..30).map(|i| 3.0 + 0.4 * jitter(i)).collect();
        v.extend((0..30).map(|i| 9.0 + 0.4 * jitter(i)));
        v
    }

    #[test]
    fn classifies_tight_unimodal() {
        assert_eq!(
            classify_shape(&tight_sample(), &ShapeParams::default()),
            Some(DistributionShape::UnimodalTight)
        );
    }

    #[test]
    fn classifies_spread_unimodal() {
        assert_eq!(
            classify_shape(&spread_sample(), &ShapeParams::default()),
            Some(DistributionShape::UnimodalSpread)
        );
    }

    #[test]
    fn classifies_bimodal() {
        assert_eq!(
            classify_shape(&bimodal_sample(), &ShapeParams::default()),
            Some(DistributionShape::Multimodal)
        );
    }

    #[test]
    fn tiny_samples_unclassified() {
        assert!(classify_shape(&[1.0, 2.0], &ShapeParams::default()).is_none());
        assert!(classify_shape(&[], &ShapeParams::default()).is_none());
    }

    #[test]
    fn find_peaks_on_bimodal_returns_two() {
        let hist = mode_histogram(&bimodal_sample()).unwrap();
        let peaks = prominent_peaks(&hist, &ShapeParams::default());
        assert_eq!(peaks.len(), 2, "peaks: {peaks:?}");
        assert!(peaks[0].location < 5.0);
        assert!(peaks[1].location > 7.0);
    }

    #[test]
    fn uniform_spread_not_multimodal() {
        // Low-discrepancy uniform data has many equal-height local maxima
        // but no valleys; the valley test must merge them.
        assert_eq!(
            classify_shape(&spread_sample(), &ShapeParams::default()),
            Some(DistributionShape::UnimodalSpread)
        );
    }

    #[test]
    fn plateau_yields_single_peak() {
        // Histogram where three adjacent bins tie at the max.
        let sample = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let hist = Histogram::with_bins(&sample, 0.5, 3.5, 3).unwrap();
        let peaks = find_peaks(&hist, 0, 0.5, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 0);
    }

    #[test]
    fn suppression_merges_close_peaks() {
        // Two maxima 1 bin apart must collapse to one with separation 3.
        let sample = [1.0, 1.0, 1.0, 2.0, 3.0, 3.0, 3.0];
        let hist = Histogram::with_bins(&sample, 0.5, 3.5, 3).unwrap();
        let peaks = find_peaks(&hist, 0, 0.3, 3);
        assert_eq!(peaks.len(), 1);
    }
}
