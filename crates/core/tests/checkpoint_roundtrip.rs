//! Checkpoint serialization properties (DESIGN.md §3i).
//!
//! * `load(save(state))` is **bit-identical** for every accumulator —
//!   `Moments` (incl. rejected counts and the empty accumulator's
//!   `±inf` min/max sentinels), `QuantileSketch` in both the exact and
//!   spilled regimes, `Histogram`, the tallies, and the full
//!   per-stimulus digest set — checked through the digest fingerprint
//!   (canonical `Debug`) after a worker-checkpoint round trip.
//! * Interrupt → save → load → resume composes to the uninterrupted
//!   run's digest fingerprint, both backends, adaptive and plain.
//! * Split ranges merged through checkpoints equal the single run.
//! * Truncated or corrupted bytes come back as typed
//!   [`CheckpointError`]s — never a panic (D4 discipline end to end).
//!
//! Counter-fingerprint equivalence needs a process-global obs registry
//! and lives in `merge_digests --smoke` / `scripts/verify.sh`.

use std::sync::OnceLock;

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const N: usize = 300;

fn capture() -> CaptureConfig {
    CaptureConfig { repeats: 2, ..CaptureConfig::default() }
}

fn tl_stimuli() -> &'static Vec<TimelineStimulus> {
    static STIMULI: OnceLock<Vec<TimelineStimulus>> = OnceLock::new();
    STIMULI.get_or_init(|| {
        let sites = alexa_like(Seed(1431), 3);
        timeline_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(1432))
    })
}

fn ab_stimuli() -> &'static Vec<AbStimulus> {
    static STIMULI: OnceLock<Vec<AbStimulus>> = OnceLock::new();
    STIMULI.get_or_init(|| {
        let sites = alexa_like(Seed(1433), 3);
        protocol_ab_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(1434))
    })
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig { threads: 2, ..ExperimentConfig::default() }
}

fn sc(shard: usize, exact_cap: usize) -> StreamConfig {
    StreamConfig {
        shard_size: shard,
        params: DigestParams { exact_cap, ..DigestParams::default() },
    }
}

fn inactive() -> AdaptiveConfig {
    AdaptiveConfig { epoch: 64, epsilon: 0.0, min_n: 8, max_n: 0 }
}

/// One worker checkpoint over `[lo, hi)` for the shared campaign.
fn tl_worker(lo: usize, hi: usize, shard: usize, exact_cap: usize) -> TimelineCheckpoint {
    timeline_worker_checkpoint(
        tl_stimuli(),
        &CrowdFlower,
        lo,
        hi,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(shard, exact_cap),
        AdaptiveBackend::Streaming,
    )
    .expect("worker checkpoint")
}

fn reference_fp(exact_cap: usize) -> String {
    stream_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(64, exact_cap),
    )
    .fingerprint()
}

// -------------------------------------------------------------------
// Round trips
// -------------------------------------------------------------------

/// Save→load→finalize of a full-range worker checkpoint reproduces the
/// plain streaming run's digest fingerprint bit for bit, in both
/// sketch regimes. With `exact_cap = 2048` every sketch stays exact
/// (full sorted sample as bit-patterns); with `exact_cap = 4` every
/// sketch has spilled to bins — both must round-trip exactly. This
/// exercises every accumulator the digest carries: `Moments` with its
/// i128 fixed-point sums, min/max bit patterns, and rejected counts;
/// `QuantileSketch` in both regimes; `Histogram`; the filter, control,
/// and behaviour states.
#[test]
fn save_load_round_trip_is_bit_exact_in_both_sketch_regimes() {
    for exact_cap in [2048, 4] {
        let ck = tl_worker(0, N, 64, exact_cap);
        let reloaded = TimelineCheckpoint::load(&ck.save()).expect("round trip loads");
        assert_eq!(ck.save(), reloaded.save(), "serialized form is a fixed point");
        let fp = reloaded
            .finalize(tl_stimuli(), &CrowdFlower)
            .expect("finalize round-tripped checkpoint")
            .fingerprint();
        assert_eq!(fp, reference_fp(exact_cap), "exact_cap={exact_cap}");
    }
}

/// Empty-range checkpoints round-trip too: every `Moments` carries its
/// `+inf`/`-inf` empty min/max sentinels through the bit-level
/// encoding, and the digest equals a zero-participant run.
#[test]
fn empty_checkpoint_round_trips_inf_sentinels() {
    let ck = tl_worker(0, 0, 64, 2048);
    let reloaded = TimelineCheckpoint::load(&ck.save()).expect("empty checkpoint loads");
    assert_eq!(ck.save(), reloaded.save());
    let digest =
        reloaded.finalize(tl_stimuli(), &CrowdFlower).expect("finalize empty checkpoint");
    let direct = stream_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        0,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(64, 2048),
    );
    assert_eq!(digest.fingerprint(), direct.fingerprint());
}

/// A/B worker checkpoints round-trip and finalize to the streaming
/// A/B digest.
#[test]
fn ab_save_load_round_trip_is_bit_exact() {
    let ck = ab_worker_checkpoint(
        ab_stimuli(),
        &CrowdFlower,
        0,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1441),
        &sc(64, 2048),
    )
    .expect("ab worker checkpoint");
    let reloaded = AbCheckpoint::load(&ck.save()).expect("ab round trip loads");
    assert_eq!(ck.save(), reloaded.save());
    let fp = reloaded
        .finalize(ab_stimuli(), &CrowdFlower)
        .expect("finalize ab checkpoint")
        .fingerprint();
    let direct = stream_ab_campaign(
        ab_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1441),
        &sc(64, 2048),
    );
    assert_eq!(fp, direct.fingerprint());
}

// -------------------------------------------------------------------
// Split / merge
// -------------------------------------------------------------------

/// Three worker checkpoints over adjacent ranges — written and reloaded
/// through the serialized form, with *different* shard sizes per worker
/// — merge into the single-process run's digest fingerprint.
#[test]
fn split_ranges_merge_to_single_run_fingerprint() {
    let mut left = TimelineCheckpoint::load(&tl_worker(0, 100, 32, 2048).save()).expect("w0");
    let mid = TimelineCheckpoint::load(&tl_worker(100, 220, 64, 2048).save()).expect("w1");
    let right = TimelineCheckpoint::load(&tl_worker(220, N, 16, 2048).save()).expect("w2");
    left.merge(&mid).expect("adjacent ranges merge");
    left.merge(&right).expect("adjacent ranges merge");
    assert_eq!(left.range(), (0, N as u64));
    let fp = left
        .finalize(tl_stimuli(), &CrowdFlower)
        .expect("finalize merged checkpoint")
        .fingerprint();
    assert_eq!(fp, reference_fp(2048));
}

/// Merge refuses non-adjacent ranges, admitted-index discontinuities,
/// and params mismatches — with typed errors, leaving the receiver
/// unchanged.
#[test]
fn merge_rejects_gaps_and_mismatches() {
    let w0 = tl_worker(0, 100, 64, 2048);
    let w2 = tl_worker(150, 200, 64, 2048);
    let mut acc = TimelineCheckpoint::load(&w0.save()).expect("w0");
    let before = acc.save();
    match acc.merge(&w2) {
        Err(CheckpointError::RangeGap { left_hi: 100, right_lo: 150 }) => {}
        other => panic!("expected RangeGap, got {other:?}"),
    }
    assert_eq!(acc.save(), before, "failed merge left the receiver unchanged");

    // Adjacent range whose admitted base disagrees (forged header).
    let w1 = tl_worker(100, 150, 64, 2048);
    let mut doctored = w1.save();
    let base = w1.admitted_before();
    doctored = doctored.replacen(
        &format!("\"admitted_before\":{base}"),
        &format!("\"admitted_before\":{}", base + 1),
        1,
    );
    let forged = TimelineCheckpoint::load(&doctored).expect("forged file still parses");
    match acc.merge(&forged) {
        Err(CheckpointError::AdmittedGap { .. }) => {}
        other => panic!("expected AdmittedGap, got {other:?}"),
    }

    // Same range, different digest params.
    let coarse = tl_worker(100, 150, 64, 4);
    match acc.merge(&coarse) {
        Err(CheckpointError::ParamsMismatch { .. }) => {}
        other => panic!("expected ParamsMismatch, got {other:?}"),
    }
}

// -------------------------------------------------------------------
// Interrupt / resume
// -------------------------------------------------------------------

fn run_checkpointed(
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
    resume: Option<&TimelineCheckpoint>,
    stop_after: Option<usize>,
) -> RunOutcome {
    let mut seen = 0usize;
    checkpointed_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(32, 2048),
        ac,
        backend,
        resume,
        &CheckpointConfig { every_shards: 2 },
        &mut |ev| match ev {
            CheckpointEvent::Checkpoint(_) => {
                seen += 1;
                stop_after.is_none_or(|k| seen < k)
            }
            CheckpointEvent::Live(_) => true,
        },
    )
    .expect("checkpointed run")
}

/// Interrupt at the first barrier, serialize, reload, resume: the
/// composition's digest fingerprint equals the uninterrupted run, for
/// both backends and for plain + adaptive configs.
#[test]
fn interrupt_resume_composes_to_uninterrupted_fingerprint() {
    let active = AdaptiveConfig { epoch: 64, epsilon: 0.25, min_n: 16, max_n: 0 };
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        for ac in [inactive(), active] {
            let RunOutcome::Complete(full) = run_checkpointed(&ac, backend, None, None) else {
                panic!("uninterrupted run must complete");
            };
            let RunOutcome::Interrupted(ck) = run_checkpointed(&ac, backend, None, Some(1))
            else {
                panic!("observer interrupts at the first barrier");
            };
            assert!(ck.is_resumable());
            let reloaded = TimelineCheckpoint::load(&ck.save()).expect("driver checkpoint loads");
            let RunOutcome::Complete(resumed) =
                run_checkpointed(&ac, backend, Some(&reloaded), None)
            else {
                panic!("resumed run must complete");
            };
            assert_eq!(
                resumed.digest.fingerprint(),
                full.digest.fingerprint(),
                "backend {backend:?}, epsilon {}",
                ac.epsilon
            );
            assert_eq!(resumed.decision_fingerprint(), full.decision_fingerprint());
        }
    }
}

/// Live-mode lines: one per barrier plus a final line, all valid JSON,
/// monotone in `processed`, and the final line equals the digest's own
/// read-outs via [`live_line_from_digest`].
#[test]
fn live_lines_progress_and_final_matches_digest() {
    let mut lines: Vec<String> = Vec::new();
    let outcome = checkpointed_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(32, 2048),
        &inactive(),
        AdaptiveBackend::Streaming,
        None,
        &CheckpointConfig { every_shards: 2 },
        &mut |ev| {
            if let CheckpointEvent::Live(l) = ev {
                lines.push(l.to_string());
            }
            true
        },
    )
    .expect("checkpointed run");
    let RunOutcome::Complete(outcome) = outcome else { panic!("run completes") };
    // 300 participants, shard 32, every_shards 2 → barriers at 64, 128,
    // 192, 256, 300, plus the final line.
    assert_eq!(lines.len(), 6);
    let processed: Vec<u64> = lines
        .iter()
        .map(|l| {
            let v: serde::Value = serde_json::from_str(l).expect("live line is valid JSON");
            v.field("processed").as_u64().expect("processed field")
        })
        .collect();
    assert_eq!(processed, vec![64, 128, 192, 256, 300, 300]);
    assert_eq!(
        lines.last().expect("non-empty"),
        &live_line_from_digest(&outcome.digest, N as u64, true)
    );
}

/// The A/B driver interrupt/resume composition equals the plain
/// streaming A/B run.
#[test]
fn ab_interrupt_resume_composes() {
    let run = |resume: Option<&AbCheckpoint>, stop_after: Option<usize>| {
        let mut seen = 0usize;
        checkpointed_ab_campaign(
            ab_stimuli(),
            &CrowdFlower,
            N,
            &cfg(),
            &paper_pipeline(),
            Seed(1441),
            &sc(32, 2048),
            resume,
            &CheckpointConfig { every_shards: 2 },
            &mut |_| {
                seen += 1;
                stop_after.is_none_or(|k| seen < k)
            },
        )
        .expect("checkpointed ab run")
    };
    let AbRunOutcome::Complete(full) = run(None, None) else { panic!("completes") };
    let AbRunOutcome::Interrupted(ck) = run(None, Some(1)) else { panic!("interrupts") };
    let reloaded = AbCheckpoint::load(&ck.save()).expect("ab checkpoint loads");
    let AbRunOutcome::Complete(resumed) = run(Some(&reloaded), None) else {
        panic!("resumed run completes")
    };
    assert_eq!(resumed.fingerprint(), full.fingerprint());
}

// -------------------------------------------------------------------
// Hostile bytes
// -------------------------------------------------------------------

/// Every truncation of a valid file — at line granularity and at byte
/// granularity — and a battery of corruptions load as typed errors,
/// never a panic.
#[test]
fn truncated_and_corrupted_bytes_yield_typed_errors() {
    let good = tl_worker(0, 100, 64, 4).save();

    // Whole-line truncations.
    let lines: Vec<&str> = good.lines().collect();
    for keep in 0..lines.len() {
        let doc = lines[..keep].join("\n");
        let err = TimelineCheckpoint::load(&doc).expect_err("truncated file must not load");
        assert!(
            matches!(err, CheckpointError::Truncated { .. }),
            "kept {keep} lines: {err:?}"
        );
    }

    // Byte truncations (cut mid-line → Parse or Truncated).
    for cut in (1..good.len()).step_by(97) {
        if !good.is_char_boundary(cut) {
            continue;
        }
        assert!(TimelineCheckpoint::load(&good[..cut]).is_err(), "cut at byte {cut}");
    }

    // Corruptions with a specific expected class.
    let cases: Vec<(String, &str)> = vec![
        (good.replacen("eyeorg-checkpoint", "not-a-checkpoint", 1), "bad format tag"),
        (good.replacen("\"version\":1", "\"version\":99", 1), "future version"),
        (good.replacen("\"kind\":\"timeline\"", "\"kind\":\"ab\"", 1), "wrong kind"),
        (good.replacen("\"spilled\":true", "\"spilled\":false", 1), "regime flip"),
        (good.replacen("\"qsum\":\"", "\"qsum\":\"x", 1), "unparseable i128"),
        (format!("{good}{{\"end\":\"eyeorg-checkpoint\"}}\n"), "trailing line"),
        (good.replace("\"counts\"", "\"c0unts\""), "missing field"),
        ("{\"not\":\"json\"".to_string(), "unterminated JSON"),
        ("null\n".to_string(), "non-object header"),
    ];
    for (doc, what) in &cases {
        assert!(TimelineCheckpoint::load(doc).is_err(), "{what} must not load");
    }

    // Flipping a sketch count must fail validation (n bookkeeping).
    if let Some(pos) = good.find("\"spilled\":true") {
        let prefix = &good[..pos];
        if let Some(cpos) = prefix.rfind("\"counts\":[") {
            let mut doc = good.clone();
            doc.insert_str(cpos + "\"counts\":[".len(), "999999,");
            assert!(
                matches!(
                    TimelineCheckpoint::load(&doc),
                    Err(CheckpointError::State { .. } | CheckpointError::Parse { .. })
                ),
                "inflated bin counts must fail the n cross-check"
            );
        }
    }

    // The original still loads after all that slicing.
    assert!(TimelineCheckpoint::load(&good).is_ok());
}

/// A worker checkpoint cannot seed a resume, and a resume under
/// different digest params is refused.
#[test]
fn resume_rejects_worker_checkpoints_and_params_drift() {
    let worker = tl_worker(0, 100, 64, 2048);
    assert!(!worker.is_resumable());
    let err = checkpointed_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(32, 2048),
        &inactive(),
        AdaptiveBackend::Streaming,
        Some(&worker),
        &CheckpointConfig::default(),
        &mut |_| true,
    )
    .expect_err("worker checkpoint must not resume");
    assert!(matches!(err, CheckpointError::Config { .. }), "{err:?}");

    let RunOutcome::Interrupted(driver) = run_checkpointed(
        &inactive(),
        AdaptiveBackend::Streaming,
        None,
        Some(1),
    ) else {
        panic!("interrupts")
    };
    let err = checkpointed_timeline_campaign(
        tl_stimuli(),
        &CrowdFlower,
        N,
        &cfg(),
        &paper_pipeline(),
        Seed(1440),
        &sc(32, 4), // different exact_cap than the checkpoint's params
        &inactive(),
        AdaptiveBackend::Streaming,
        Some(&driver),
        &CheckpointConfig::default(),
        &mut |_| true,
    )
    .expect_err("params drift must be refused");
    assert!(matches!(err, CheckpointError::ParamsMismatch { .. }), "{err:?}");
}
