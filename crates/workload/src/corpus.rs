//! Corpus samplers: the site populations the paper's campaigns draw from.
//!
//! * [`alexa_like`] — the timeline and H1-vs-H2 campaigns use "a sample of
//!   100 of the Alexa top 1M sites that fully support HTTP/2". We
//!   reproduce the *mixture*: a weighted blend of site classes.
//! * [`ad_heavy`] — the ad-blocker campaign samples "100 websites" from
//!   "10,000 websites that display ads"; our equivalent filters the
//!   generator toward ad-carrying classes and regenerates until the site
//!   actually displays ads.

use eyeorg_stats::rng::Rng;


use eyeorg_stats::Seed;

use crate::gen::{generate_site, SiteClass};
use crate::site::Website;

/// Class mixture of a general top-sites sample (weights sum to 1).
const ALEXA_MIX: [(SiteClass, f64); 5] = [
    (SiteClass::News, 0.25),
    (SiteClass::Ecommerce, 0.20),
    (SiteClass::Blog, 0.25),
    (SiteClass::Landing, 0.10),
    (SiteClass::MediaHeavy, 0.20),
];

/// Class mixture of the ad-displaying population (no Landing pages, more
/// news/media).
const AD_MIX: [(SiteClass, f64); 4] = [
    (SiteClass::News, 0.45),
    (SiteClass::Ecommerce, 0.15),
    (SiteClass::Blog, 0.10),
    (SiteClass::MediaHeavy, 0.30),
];

fn pick_class(rng: &mut Rng, mix: &[(SiteClass, f64)]) -> SiteClass {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut x: f64 = rng.random_range(0.0..total);
    for &(c, w) in mix {
        if x < w {
            return c;
        }
        x -= w;
    }
    // lint:allow(D4): mixture tables are non-empty constants; rounding can leave x past the last band
    mix.last().expect("non-empty mixture").0
}

/// Sample `n` sites resembling an Alexa-top slice with full H2 support.
///
/// Sites that had "fully adopted" HTTP/2 by 2016 mostly also followed the
/// migration guidance to *consolidate origins* (domain sharding is an
/// HTTP/1.1 optimisation that actively hurts H2), so a majority of the
/// sample serves its first-party content from a single origin. The
/// remainder kept their legacy CDN shards — the slice of sites where
/// HTTP/1.1 can still look good (the paper's 12 % H1-preferred tail).
pub fn alexa_like(seed: Seed, n: usize) -> Vec<Website> {
    let mut rng = Rng::seed_from_u64(seed.derive("corpus-alexa").value());
    (0..n as u64)
        .map(|i| {
            let class = pick_class(&mut rng, &ALEXA_MIX);
            let mut site = generate_site(seed.derive("alexa"), i, class);
            // The paper's sample supports H2 end to end on its first
            // party; force the flag in case a class ever relaxes it.
            for o in &mut site.origins {
                if !o.third_party {
                    o.supports_h2 = true;
                }
            }
            if rng.random_bool(0.65) {
                consolidate_first_party(&mut site);
            }
            site
        })
        .collect()
}

/// Remap every first-party resource onto origin 0 (the H2-era origin
/// consolidation); shard origins stay in the table but serve nothing.
fn consolidate_first_party(site: &mut Website) {
    let first_party: Vec<bool> = site.origins.iter().map(|o| !o.third_party).collect();
    for r in &mut site.resources {
        if first_party[r.origin.0 as usize] {
            r.origin = crate::resource::OriginRef(0);
        }
    }
}

/// Sample `n` sites from the ad-displaying population: every returned
/// site carries at least `min_ads` display ads.
pub fn ad_heavy(seed: Seed, n: usize, min_ads: usize) -> Vec<Website> {
    let mut rng = Rng::seed_from_u64(seed.derive("corpus-ads").value());
    let mut out = Vec::with_capacity(n);
    let mut index = 0u64;
    while out.len() < n {
        let class = pick_class(&mut rng, &AD_MIX);
        let site = generate_site(seed.derive("ads"), index, class);
        index += 1;
        if site.count_kind(crate::resource::ResourceKind::Ad) >= min_ads {
            out.push(site);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    #[test]
    fn alexa_sample_size_and_validity() {
        let sites = alexa_like(Seed(1), 30);
        assert_eq!(sites.len(), 30);
        for s in &sites {
            assert!(s.validate().is_empty(), "{}: {:?}", s.name, s.validate());
            assert!(s.origins.iter().filter(|o| !o.third_party).all(|o| o.supports_h2));
        }
    }

    #[test]
    fn alexa_sample_is_heterogeneous() {
        let sites = alexa_like(Seed(2), 50);
        let counts: Vec<usize> = sites.iter().map(|s| s.resources.len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > &(min * 3), "spread {min}..{max} too narrow");
    }

    #[test]
    fn ad_heavy_all_have_ads() {
        let sites = ad_heavy(Seed(3), 20, 2);
        assert_eq!(sites.len(), 20);
        for s in &sites {
            assert!(s.count_kind(ResourceKind::Ad) >= 2, "{}", s.name);
            assert!(s.validate().is_empty());
        }
    }

    #[test]
    fn corpora_deterministic() {
        assert_eq!(alexa_like(Seed(5), 10), alexa_like(Seed(5), 10));
        assert_eq!(ad_heavy(Seed(5), 10, 1), ad_heavy(Seed(5), 10, 1));
        assert_ne!(alexa_like(Seed(5), 10), alexa_like(Seed(6), 10));
    }

    #[test]
    fn prefix_stability() {
        // Taking a bigger sample must not change the earlier sites.
        let a = alexa_like(Seed(7), 5);
        let b = alexa_like(Seed(7), 10);
        assert_eq!(a[..], b[..5]);
    }
}
