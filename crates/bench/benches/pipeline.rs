//! Performance of the reproduction pipeline itself: how fast the
//! simulated substrates run. Useful for keeping campaign regeneration
//! interactive (the full paper-scale `run_all` takes seconds, and these
//! benches are the early-warning system for regressions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

use eyeorg_browser::{load_page, BrowserConfig};
use eyeorg_core::prelude::*;
use eyeorg_crowd::{timeline_response_cached, CrowdFlower, PopulationProfile};
use eyeorg_metrics::compute_metrics;
use eyeorg_net::{sim::single_transfer, NetworkProfile, SimDuration, TlsMode};
use eyeorg_stats::Seed;
use eyeorg_video::{encode, CaptureConfig, FrameTimeline, Video};
use eyeorg_workload::{alexa_like, generate_site, SiteClass};

fn bench_transport(c: &mut Criterion) {
    c.bench_function("net/1MB_transfer_cable", |b| {
        b.iter(|| single_transfer(NetworkProfile::cable(), Seed(1), TlsMode::Tls13, 300, 1_000_000))
    });
}

fn bench_page_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("browser/page_load");
    for class in [SiteClass::Landing, SiteClass::Blog, SiteClass::News] {
        let site = generate_site(Seed(2), 0, class);
        g.bench_function(format!("{class:?}"), |b| {
            b.iter(|| load_page(&site, &BrowserConfig::new(), Seed(3)))
        });
    }
    g.finish();
}

fn bench_capture_and_metrics(c: &mut Criterion) {
    let site = generate_site(Seed(4), 0, SiteClass::Blog);
    let trace = load_page(&site, &BrowserConfig::new(), Seed(4));
    c.bench_function("video/capture_and_encode", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| {
                let v = Video::capture(t, 10, SimDuration::from_secs(4));
                encode(&v).byte_size()
            },
            BatchSize::SmallInput,
        )
    });
    let video = Video::capture(trace, 10, SimDuration::from_secs(4));
    c.bench_function("metrics/compute_all", |b| b.iter(|| compute_metrics(&video)));
    c.bench_function("video/frame_timeline", |b| b.iter(|| FrameTimeline::of(&video)));
}

fn bench_responses(c: &mut Criterion) {
    let site = generate_site(Seed(5), 0, SiteClass::Blog);
    let trace = load_page(&site, &BrowserConfig::new(), Seed(5));
    let video = Video::capture(trace, 10, SimDuration::from_secs(4));
    let participants = PopulationProfile::paid().generate(Seed(6), 64);
    c.bench_function("crowd/64_timeline_responses", |b| {
        b.iter_batched(
            || FrameTimeline::of(&video),
            |mut frames| {
                participants
                    .iter()
                    .map(|p| timeline_response_cached(&video, &mut frames, p, "v").submitted)
                    .collect::<Vec<_>>()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_campaign(c: &mut Criterion) {
    let sites = alexa_like(Seed(7), 4);
    let stimuli = timeline_stimuli(
        &sites,
        &BrowserConfig::new().with_network(NetworkProfile::fttc()),
        &CaptureConfig { repeats: 2, ..CaptureConfig::default() },
        Seed(7),
    );
    c.bench_function("core/40_participant_campaign", |b| {
        b.iter_batched(
            || stimuli.clone(),
            |s| {
                let campaign = run_timeline_campaign(
                    s,
                    &CrowdFlower,
                    40,
                    &ExperimentConfig::default(),
                    Seed(8),
                );
                filter_timeline(&campaign, &paper_pipeline()).kept.len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_transport,
    bench_page_load,
    bench_capture_and_metrics,
    bench_responses,
    bench_campaign
);
criterion_main!(benches);
