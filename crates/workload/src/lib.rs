//! # eyeorg-workload
//!
//! Synthetic website corpus for the Eyeorg reproduction.
//!
//! The paper's campaigns sample real site populations (Alexa top-1M sites
//! with HTTP/2 support; 10,000 ad-displaying sites). Those populations
//! are not available here, so this crate generates structurally
//! equivalent ones (substitution documented in `DESIGN.md`): seeded,
//! deterministic sites with heavy-tailed object counts and sizes,
//! per-class structure (news/commerce/blog/landing/media), CDN sharding,
//! script-injected ad/tracker chains, and above/below-fold layout.
//!
//! * [`resource`] — the resource model (kinds, discovery, layout rects).
//! * [`site`] — [`site::Website`] with validation of structural invariants.
//! * [`gen`] — the per-site generator.
//! * [`corpus`] — the campaign-level samplers.
//! * [`dist`] — heavy-tailed sampling primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dist;
pub mod gen;
pub mod resource;
pub mod site;

pub use corpus::{ad_heavy, alexa_like};
pub use gen::{generate_site, SiteClass};
pub use resource::{Discovery, OriginRef, Rect, Resource, ResourceId, ResourceKind};
pub use site::{Origin, SiteError, Website};
