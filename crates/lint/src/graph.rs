//! Workspace item graph and the taint rules built on it (D7, D8).
//!
//! A light structural pass over the token stream recovers, per file,
//! the `fn` items (qualified by crate, module nesting, and impl/trait
//! type), the call references each body makes (bare calls, qualified
//! paths, method calls), the *panic sites* it contains (`.unwrap()`,
//! `.expect(`, panicking macros, expression-position indexing, and
//! division/remainder by a non-literal divisor), and the
//! *nondeterminism sources* it touches (hash-ordered collections,
//! `available_parallelism`, env reads outside the `EYEORG_*` allowlist,
//! thread identity).
//!
//! Calls are resolved by **path-suffix matching** against the item
//! table, constrained by the workspace's crate dependency graph (a
//! caller can only bind to items in crates its crate actually depends
//! on); an unqualified or method call falls back to every item with
//! that name. This over-approximates the true call graph — which is
//! the correct direction for the two rules that consume it:
//!
//! * **D7** — no panic site may be *reachable* from a function marked
//!   `// lint:entrypoint(untrusted)` (the checkpoint load/merge surface
//!   and the vendored-serde decode path: code that runs on bytes from
//!   disk).
//! * **D8** — no function containing a nondeterminism source may
//!   *reach* a digest/fingerprint sink (anything in
//!   `crates/core/src/digest.rs`, any fn whose name contains
//!   `fingerprint`, or a fn marked `// lint:sink(digest)`).
//!
//! Both emit ordinary rule findings carrying a witness call path, so
//! the existing waiver machinery (`// lint:allow(D7, n=2): proof`)
//! applies at the flagged line.

use crate::token::{Token, TokenKind};

/// Direct dependencies between workspace crates (short names), mirrored
/// from the crate manifests. Call resolution refuses to bind a call in
/// crate A to an item in crate B unless B is in A's dependency closure
/// — this is what keeps name-suffix matching from inventing edges such
/// as `obs` code calling `core::checkpoint` methods.
const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("stats", &["serde"]),
    ("obs", &["serde", "serde_json"]),
    ("net", &["obs", "stats", "serde", "serde_json"]),
    ("http", &["obs", "net", "stats"]),
    ("browser", &["obs", "stats", "net", "http", "workload", "serde", "serde_json"]),
    ("video", &["obs", "net", "stats", "browser", "workload"]),
    ("metrics", &["net", "browser", "video", "workload", "stats"]),
    ("crowd", &["net", "video", "metrics", "browser", "workload", "stats", "serde"]),
    ("workload", &["serde", "stats", "serde_json"]),
    (
        "core",
        &[
            "obs", "stats", "net", "http", "workload", "browser", "video", "metrics",
            "crowd", "serde", "serde_json",
        ],
    ),
    (
        "bench",
        &[
            "obs", "net", "http", "core", "stats", "workload", "browser", "video",
            "metrics", "crowd", "serde_json",
        ],
    ),
    ("lint", &["core", "crowd", "stats", "video", "workload", "browser", "obs"]),
    ("serde", &[]),
    ("serde_json", &["serde"]),
];

/// Transitive dependency closure of `krate` (short name), including
/// itself. Unknown crates get `None`: resolution then allows any target
/// (conservative for ad-hoc fixtures and the root package).
fn dep_closure(krate: &str) -> Option<Vec<&'static str>> {
    let direct: std::collections::BTreeMap<&str, &[&str]> =
        CRATE_DEPS.iter().copied().collect();
    let (root_key, _) = CRATE_DEPS.iter().find(|(k, _)| *k == krate)?;
    let mut seen: Vec<&'static str> = Vec::new();
    let mut stack = vec![*root_key];
    while let Some(k) = stack.pop() {
        if seen.contains(&k) {
            continue;
        }
        seen.push(k);
        for d in direct.get(k).copied().unwrap_or(&[]) {
            stack.push(d);
        }
    }
    seen.sort_unstable();
    Some(seen)
}

/// One file handed to the graph pass.
pub struct FileInput<'a> {
    /// Workspace-relative display path.
    pub path: &'a str,
    /// Crate short name from [`crate::FileMeta`].
    pub crate_name: &'a str,
    /// Source text.
    pub src: &'a str,
    /// Token stream of `src`.
    pub tokens: &'a [Token],
    /// Per-line `#[cfg(test)]`-region flags (1-based line - 1).
    pub test_lines: &'a [bool],
    /// Whether the file lives under `tests/`.
    pub in_tests_dir: bool,
    /// Whether the file is a bin/example entry point.
    pub is_entry_file: bool,
}

/// A D7/D8 finding produced by the graph pass, routed through the
/// normal waiver/baseline machinery by the caller.
#[derive(Debug)]
pub struct TaintFinding {
    /// Index into the `files` slice given to [`analyze`].
    pub file: usize,
    /// 1-based line of the flagged site.
    pub line: usize,
    /// `"D7"` or `"D8"`.
    pub code: &'static str,
    /// Message with a witness call path.
    pub message: String,
}

/// A call reference inside a fn body.
#[derive(Debug)]
struct CallRef {
    /// Path segments as written (`Self` already substituted).
    segs: Vec<String>,
}

/// A potential panic site inside a fn body.
#[derive(Debug)]
struct PanicSite {
    line: usize,
    what: &'static str,
}

/// A nondeterminism source inside a fn body.
#[derive(Debug)]
struct NdSource {
    line: usize,
    what: String,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug)]
struct FnItem {
    /// Qualified path: crate, modules, impl/trait type, name.
    path: Vec<String>,
    name: String,
    file: usize,
    is_test: bool,
    in_entry_file: bool,
    entrypoint: bool,
    sink: bool,
    calls: Vec<CallRef>,
    panic_sites: Vec<PanicSite>,
    nd_sources: Vec<NdSource>,
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Macros whose expansion can panic.
fn is_panic_macro(name: &str) -> bool {
    matches!(
        name,
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne"
    )
}

/// Qualified path prefix derived from a file's workspace location:
/// `crates/net/src/event.rs` → `[net, event]`, `src/bin/x.rs` under
/// bench → `[bench, x]`, `vendor/serde_json/src/lib.rs` →
/// `[serde_json]`. Inline `mod` nesting extends this during parsing.
fn base_path(path: &str, crate_name: &str) -> Vec<String> {
    let mut out = vec![crate_name.strip_prefix("eyeorg_").unwrap_or(crate_name).to_owned()];
    let comps: Vec<&str> = path.split('/').collect();
    let start = comps
        .iter()
        .position(|c| *c == "src" || *c == "tests" || *c == "examples")
        .map(|p| p + 1)
        .unwrap_or(comps.len().saturating_sub(1));
    for c in &comps[start..] {
        let seg = c.strip_suffix(".rs").unwrap_or(c);
        if matches!(seg, "lib" | "mod" | "main" | "bin") || seg.is_empty() {
            continue;
        }
        out.push(seg.to_owned());
    }
    out
}

/// The structural parser: one pass over a file's tokens.
struct Parser<'a> {
    file: usize,
    input: &'a FileInput<'a>,
    i: usize,
    ctx: Vec<String>,
    impl_type: Option<String>,
    fn_stack: Vec<usize>,
    pending_entry: bool,
    pending_sink: bool,
    prev_sig: Option<(TokenKind, &'a str)>,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn new(file: usize, input: &'a FileInput<'a>) -> Parser<'a> {
        Parser {
            file,
            input,
            i: 0,
            ctx: base_path(input.path, input.crate_name),
            impl_type: None,
            fn_stack: Vec::new(),
            pending_entry: false,
            pending_sink: false,
            prev_sig: None,
            fns: Vec::new(),
        }
    }

    fn toks(&self) -> &'a [Token] {
        self.input.tokens
    }

    fn text(&self, t: &Token) -> &'a str {
        t.text(self.input.src)
    }

    /// Index of the next significant token at or after `from`.
    fn sig_at(&self, mut from: usize) -> Option<usize> {
        while let Some(t) = self.toks().get(from) {
            match t.kind {
                TokenKind::White | TokenKind::LineComment | TokenKind::BlockComment => {
                    from += 1
                }
                _ => return Some(from),
            }
        }
        None
    }

    /// Peek the `n`th significant token after the cursor (0 = next).
    fn peek_sig(&self, n: usize) -> Option<&'a Token> {
        let mut at = self.i;
        for k in 0..=n {
            at = self.sig_at(at)?;
            if k == n {
                return Some(&self.toks()[at]);
            }
            at += 1;
        }
        None
    }

    /// Advance the cursor to the next significant token and return it,
    /// processing marker comments and updating `prev_sig`.
    fn bump(&mut self) -> Option<&'a Token> {
        while let Some(t) = self.toks().get(self.i) {
            self.i += 1;
            match t.kind {
                TokenKind::White | TokenKind::BlockComment => continue,
                TokenKind::LineComment => {
                    self.note_markers(self.text(t));
                    continue;
                }
                _ => {
                    self.prev_sig = Some((t.kind, self.text(t)));
                    return Some(t);
                }
            }
        }
        None
    }

    /// Record `lint:entrypoint(untrusted)` / `lint:sink(digest)` markers
    /// from a `//` comment. Doc comments are documentation: inert.
    fn note_markers(&mut self, comment: &str) {
        let body = &comment[2..];
        if body.starts_with('/') || body.starts_with('!') {
            return;
        }
        if body.contains("lint:entrypoint(untrusted)") {
            self.pending_entry = true;
        }
        if body.contains("lint:sink(digest)") {
            self.pending_sink = true;
        }
    }

    fn clear_markers(&mut self) {
        self.pending_entry = false;
        self.pending_sink = false;
    }

    /// Parse a `{`-delimited region (cursor just past the `{`). Returns
    /// after consuming the matching `}`.
    fn parse_region(&mut self) {
        loop {
            let prev = self.prev_sig;
            let Some(tok) = self.bump() else { return };
            match tok.kind {
                TokenKind::Punct => match self.text(tok) {
                    "{" => {
                        self.clear_markers();
                        self.parse_region();
                    }
                    "}" => {
                        self.clear_markers();
                        return;
                    }
                    ";" => self.clear_markers(),
                    "[" => self.note_indexing(prev, tok.line),
                    "/" | "%" => self.note_division(tok.line),
                    _ => {}
                },
                TokenKind::Ident => self.handle_ident(tok, prev),
                _ => {}
            }
        }
    }

    /// Dispatch on an identifier: item keywords open scopes, everything
    /// else is expression context (calls, macros, sources).
    fn handle_ident(&mut self, tok: &'a Token, prev: Option<(TokenKind, &'a str)>) {
        match self.text(tok) {
            "mod" => self.parse_mod(),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "fn" => self.parse_fn(),
            "macro_rules" => {
                // `macro_rules! name { … }`: the body is a balanced
                // token tree; descend so fn items defined by expansion
                // templates (vendored serde) are still recorded.
                let _ = self.bump(); // `!`
                let _ = self.bump(); // name
                if self.peek_sig(0).map(|t| self.text(t)) == Some("{") {
                    let _ = self.bump();
                    self.clear_markers();
                    self.parse_region();
                }
            }
            name if !is_keyword(name) => self.expr_ident(tok, prev, name),
            _ => {}
        }
    }

    /// `mod name { … }` extends the qualification path; `mod name;` is
    /// just a declaration.
    fn parse_mod(&mut self) {
        let Some(name_tok) = self.bump() else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = self.text(name_tok).to_owned();
        if self.peek_sig(0).map(|t| self.text(t)) == Some("{") {
            let _ = self.bump();
            self.clear_markers();
            self.ctx.push(name);
            let saved = self.impl_type.take();
            self.parse_region();
            self.impl_type = saved;
            self.ctx.pop();
        }
    }

    /// `impl … { … }`: the implemented type (last angle-depth-0
    /// identifier before `where`/`{`) joins the qualification path and
    /// becomes the substitution for `Self`.
    fn parse_impl(&mut self) {
        let mut angle = 0i32;
        let mut last_dash = false;
        let mut ty: Option<String> = None;
        loop {
            let Some(t) = self.bump() else { return };
            match t.kind {
                TokenKind::Punct => match self.text(t) {
                    "<" => angle += 1,
                    ">" if !last_dash => angle -= 1,
                    "{" => break,
                    ";" => return, // e.g. inside macro patterns
                    _ => {}
                },
                TokenKind::Ident => {
                    let s = self.text(t);
                    if s == "where" {
                        // Scan on to the `{` without collecting idents.
                        loop {
                            let Some(t) = self.bump() else { return };
                            if t.kind == TokenKind::Punct && self.text(t) == "{" {
                                break;
                            }
                            if t.kind == TokenKind::Punct && self.text(t) == ";" {
                                return;
                            }
                        }
                        break;
                    }
                    if angle == 0 && !is_keyword(s) {
                        ty = Some(s.to_owned());
                    }
                }
                _ => {}
            }
            last_dash = t.kind == TokenKind::Punct && self.text(t) == "-";
        }
        self.clear_markers();
        let saved_impl = self.impl_type.take();
        let pushed = ty.is_some();
        if let Some(ty) = ty {
            self.impl_type = Some(ty.clone());
            self.ctx.push(ty);
        }
        self.parse_region();
        if pushed {
            self.ctx.pop();
        }
        self.impl_type = saved_impl;
    }

    /// `trait Name { … }`: default method bodies are real code; the
    /// trait name qualifies them like an impl type.
    fn parse_trait(&mut self) {
        let Some(name_tok) = self.bump() else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = self.text(name_tok).to_owned();
        loop {
            let Some(t) = self.bump() else { return };
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "{" => break,
                    ";" => return,
                    _ => {}
                }
            }
        }
        self.clear_markers();
        let saved = self.impl_type.take();
        self.impl_type = Some(name.clone());
        self.ctx.push(name);
        self.parse_region();
        self.ctx.pop();
        self.impl_type = saved;
    }

    /// `fn name…` — record the item, then scan the signature to the
    /// body `{` (or `;` for a bodiless trait method) and parse the body
    /// attributing calls/sites to this fn.
    fn parse_fn(&mut self) {
        // `fn(u8) -> u8` as a type: not an item.
        if !self.peek_sig(0).is_some_and(|t| t.kind == TokenKind::Ident) {
            return;
        }
        let Some(name_tok) = self.bump() else { return };
        let name = self.text(name_tok).to_owned();
        let line = name_tok.line;
        let is_test = self.input.in_tests_dir
            || self.input.test_lines.get(line - 1).copied().unwrap_or(false);
        let mut path = self.ctx.clone();
        path.push(name.clone());
        let sink = self.pending_sink
            || self.input.path == "crates/core/src/digest.rs"
            || name.contains("fingerprint");
        let item = FnItem {
            path,
            name,
            file: self.file,
            is_test,
            in_entry_file: self.input.is_entry_file,
            entrypoint: self.pending_entry,
            sink,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            nd_sources: Vec::new(),
        };
        self.clear_markers();
        let idx = self.fns.len();
        self.fns.push(item);
        // Signature: first `{` at paren/bracket depth 0 opens the body;
        // a `;` there means no body.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        loop {
            let Some(t) = self.bump() else { return };
            if t.kind == TokenKind::Punct {
                match self.text(t) {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => break,
                    ";" if paren == 0 && bracket == 0 => return,
                    _ => {}
                }
            }
        }
        self.fn_stack.push(idx);
        self.parse_region();
        self.fn_stack.pop();
    }

    /// Expression-position identifier: detect calls, panic macros, and
    /// nondeterminism sources.
    fn expr_ident(&mut self, tok: &'a Token, prev: Option<(TokenKind, &'a str)>, name: &str) {
        let line = tok.line;
        // Hash-ordered collections / hasher state as a D8 source.
        if matches!(name, "HashMap" | "HashSet" | "RandomState" | "DefaultHasher") {
            self.note_source(line, format!("hash-ordered `{name}`"));
        }
        if name == "available_parallelism" {
            self.note_source(line, "`available_parallelism` (machine-dependent)".to_owned());
        }
        if name == "ThreadId" {
            self.note_source(line, "thread identity".to_owned());
        }
        // Macro invocation?
        if self.peek_sig(0).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == "!")
        {
            if is_panic_macro(name) {
                self.note_panic(line, "panicking macro");
            }
            let _ = self.bump(); // consume `!` so `![` is not indexing
            return;
        }
        // Path / call detection: collect `a::b::c` and look for `(`.
        let mut segs = vec![self.seg_of(name)];
        while let (Some(a), Some(b)) = (self.peek_sig(0), self.peek_sig(1)) {
            if a.kind == TokenKind::Punct && self.text(a) == ":"
                && b.kind == TokenKind::Punct && self.text(b) == ":"
            {
                let _ = self.bump();
                let _ = self.bump();
                match self.peek_sig(0) {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let s = self.text(t);
                        let _ = self.bump();
                        if is_keyword(s) && s != "crate" && s != "self" && s != "super" {
                            return;
                        }
                        segs.push(self.seg_of(s));
                    }
                    Some(t) if t.kind == TokenKind::Punct && self.text(t) == "<" => {
                        // Turbofish `::<T>`: skip to the matching `>`.
                        let _ = self.bump();
                        let mut depth = 1i32;
                        let mut last_dash = false;
                        while depth > 0 {
                            let Some(t) = self.bump() else { return };
                            if t.kind == TokenKind::Punct {
                                match self.text(t) {
                                    "<" => depth += 1,
                                    ">" if !last_dash => depth -= 1,
                                    _ => {}
                                }
                                last_dash = self.text(t) == "-";
                            } else {
                                last_dash = false;
                            }
                        }
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        // Sources named through a path (`std::thread::available_parallelism`,
        // `collections::HashMap::new`): the bare-name checks above only saw
        // the first segment, so re-check the rest.
        for s in segs.iter().skip(1) {
            if matches!(s.as_str(), "HashMap" | "HashSet" | "RandomState" | "DefaultHasher") {
                self.note_source(line, format!("hash-ordered `{s}`"));
            }
            if s == "available_parallelism" {
                self.note_source(line, "`available_parallelism` (machine-dependent)".to_owned());
            }
            if s == "ThreadId" {
                self.note_source(line, "thread identity".to_owned());
            }
        }
        let is_call = self
            .peek_sig(0)
            .is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == "(");
        if !is_call {
            return;
        }
        segs.retain(|s| s != "crate" && s != "self" && s != "super");
        if segs.is_empty() {
            return;
        }
        let method = matches!(prev, Some((TokenKind::Punct, ".")));
        let Some(callee) = segs.last().cloned() else { return };
        if method && matches!(callee.as_str(), "unwrap" | "expect") {
            self.note_panic(line, if callee == "unwrap" { ".unwrap()" } else { ".expect(…)" });
        }
        // Env reads: `env::var("NAME")` outside the EYEORG_* allowlist.
        if segs.len() >= 2
            && segs[segs.len() - 2] == "env"
            && matches!(callee.as_str(), "var" | "var_os" | "vars" | "vars_os")
        {
            let arg_allowed = matches!(callee.as_str(), "var" | "var_os")
                && self.peek_sig(1).is_some_and(|t| {
                    t.kind == TokenKind::Str
                        && self.text(t).trim_matches(|c| c == 'b' || c == '"').starts_with("EYEORG_")
                });
            if !arg_allowed {
                self.note_source(line, format!("env read `env::{callee}`"));
            }
        }
        if segs.len() >= 2 && segs[segs.len() - 2] == "thread" && callee == "current" {
            self.note_source(line, "thread identity (`thread::current`)".to_owned());
        }
        if let Some(f) = self.fn_stack.last().copied() {
            self.fns[f].calls.push(CallRef { segs });
        }
    }

    /// Substitute `Self` with the surrounding impl/trait type.
    fn seg_of(&self, s: &str) -> String {
        if s == "Self" {
            if let Some(ty) = &self.impl_type {
                return ty.clone();
            }
        }
        s.to_owned()
    }

    /// A `[` in expression position (previous significant token is a
    /// value-producing ident, `)`, `]` or `?`) is slice/array indexing,
    /// which panics when out of bounds.
    fn note_indexing(&mut self, prev: Option<(TokenKind, &'a str)>, line: usize) {
        let indexing = match prev {
            Some((TokenKind::Ident, s)) => !is_keyword(s),
            Some((TokenKind::Punct, ")" | "]" | "?")) => true,
            _ => false,
        };
        if indexing {
            self.note_panic(line, "slice/array indexing `[…]`");
        }
    }

    /// `/` or `%` with a non-literal divisor can panic (integer divide
    /// by zero / MIN-by-minus-one overflow). A nonzero numeric literal
    /// divisor is statically safe.
    fn note_division(&mut self, line: usize) {
        let mut n = 0usize;
        // `/=` and `%=` compound-assign forms.
        if self.peek_sig(0).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t) == "=")
        {
            n = 1;
        }
        let safe = self.peek_sig(n).is_some_and(|t| {
            // Any literal containing a nonzero digit (`2`, `0x1f`,
            // `100.0`) cannot be a zero divisor; `0`, `0x0`, `0.0`
            // stay flagged.
            t.kind == TokenKind::Number
                && self.text(t).chars().any(|c| ('1'..='9').contains(&c))
        });
        if !safe {
            self.note_panic(line, "`/` or `%` with non-literal divisor");
        }
    }

    fn note_panic(&mut self, line: usize, what: &'static str) {
        if let Some(f) = self.fn_stack.last().copied() {
            self.fns[f].panic_sites.push(PanicSite { line, what });
        }
    }

    fn note_source(&mut self, line: usize, what: String) {
        if let Some(f) = self.fn_stack.last().copied() {
            self.fns[f].nd_sources.push(NdSource { line, what });
        }
    }

    fn run(mut self) -> Vec<FnItem> {
        // Top level is an implicit region that ends at EOF, not `}`;
        // parse_region returning on a stray `}` is fine (fixtures).
        loop {
            let before = self.i;
            self.parse_region();
            if self.i >= self.toks().len() || self.i == before {
                break;
            }
        }
        self.fns
    }
}

/// Run the structural pass + taint rules over a file set. Returns
/// findings sorted by (file, line, code).
pub fn analyze(files: &[FileInput<'_>]) -> Vec<TaintFinding> {
    let mut fns: Vec<FnItem> = Vec::new();
    for (idx, input) in files.iter().enumerate() {
        fns.extend(Parser::new(idx, input).run());
    }
    // Name index: last path segment → item indices (insertion order is
    // file order, which is sorted by the caller — deterministic).
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
    }
    let closures: Vec<Option<Vec<&'static str>>> =
        files.iter().map(|f| dep_closure(f.crate_name)).collect();

    // Resolve every call to candidate items, build the edge list.
    let resolve = |caller: &FnItem, call: &CallRef| -> Vec<usize> {
        let Some(last_seg) = call.segs.last() else { return Vec::new() };
        let Some(cands) = by_name.get(last_seg.as_str()) else {
            return Vec::new();
        };
        let allowed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| {
                let tf = &fns[t];
                if tf.file != caller.file {
                    if tf.is_test || tf.in_entry_file {
                        return false;
                    }
                    if let Some(cl) = &closures[caller.file] {
                        let tc = files[tf.file].crate_name;
                        let tc = tc.strip_prefix("eyeorg_").unwrap_or(tc);
                        if !cl.contains(&tc) && files[tf.file].crate_name != files[caller.file].crate_name {
                            return false;
                        }
                    }
                }
                true
            })
            .collect();
        if call.segs.len() > 1 {
            let norm = |s: &str| s.strip_prefix("eyeorg_").unwrap_or(s).to_owned();
            let want: Vec<String> = call.segs.iter().map(|s| norm(s)).collect();
            let refined: Vec<usize> = allowed
                .iter()
                .copied()
                .filter(|&t| {
                    let p = &fns[t].path;
                    p.len() >= want.len()
                        && p[p.len() - want.len()..]
                            .iter()
                            .zip(&want)
                            .all(|(a, b)| norm(a) == *b)
                })
                .collect();
            if !refined.is_empty() {
                return refined;
            }
        }
        allowed
    };
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
    for f in &fns {
        let mut out: Vec<usize> = f.calls.iter().flat_map(|c| resolve(f, c)).collect();
        out.sort_unstable();
        out.dedup();
        edges.push(out);
    }

    let qual = |i: usize| fns[i].path.join("::");
    // Witness path from a BFS parent chain, entry first.
    let chain = |parent: &[Option<usize>], mut at: usize| -> String {
        let mut segs = vec![qual(at)];
        while let Some(p) = parent[at] {
            segs.push(qual(p));
            at = p;
            if segs.len() > 8 {
                segs.push("…".to_owned());
                break;
            }
        }
        segs.reverse();
        segs.join(" → ")
    };

    let mut findings = Vec::new();

    // D7: BFS the call graph from every `lint:entrypoint(untrusted)` fn;
    // each panic site in the reachable set is a finding.
    let entries: Vec<usize> = (0..fns.len()).filter(|&i| fns[i].entrypoint).collect();
    let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
    let mut reached: Vec<bool> = vec![false; fns.len()];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in &entries {
        reached[e] = true;
    }
    while let Some(f) = queue.pop_front() {
        for &t in &edges[f] {
            if !reached[t] {
                reached[t] = true;
                parent[t] = Some(f);
                queue.push_back(t);
            }
        }
    }
    for i in 0..fns.len() {
        if !reached[i] {
            continue;
        }
        for site in &fns[i].panic_sites {
            findings.push(TaintFinding {
                file: fns[i].file,
                line: site.line,
                code: "D7",
                message: format!(
                    "{} in `{}` is reachable from untrusted entry point ({}): \
                     code on the checkpoint/decode path must return typed errors, \
                     or waive with the invariant that rules the panic out",
                    site.what,
                    qual(i),
                    chain(&parent, i),
                ),
            });
        }
    }

    // D8: from every fn containing a nondeterminism source, BFS forward;
    // reaching any digest/fingerprint sink flags the source line.
    for i in 0..fns.len() {
        if fns[i].nd_sources.is_empty() || fns[i].is_test {
            continue;
        }
        let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
        let mut seen: Vec<bool> = vec![false; fns.len()];
        let mut queue = std::collections::VecDeque::from([i]);
        seen[i] = true;
        let mut hit: Option<usize> = if fns[i].sink { Some(i) } else { None };
        'bfs: while let Some(f) = queue.pop_front() {
            for &t in &edges[f] {
                if !seen[t] {
                    seen[t] = true;
                    parent[t] = Some(f);
                    if fns[t].sink {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        if let Some(s) = hit {
            for src in &fns[i].nd_sources {
                findings.push(TaintFinding {
                    file: fns[i].file,
                    line: src.line,
                    code: "D8",
                    message: format!(
                        "nondeterminism source ({}) in `{}` can reach digest/fingerprint \
                         sink `{}` ({}): quarantine the source or waive with proof the \
                         value never feeds fingerprint bytes",
                        src.what,
                        qual(i),
                        qual(s),
                        chain(&parent, s),
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (a.file, a.line, a.code).cmp(&(b.file, b.line, b.code)));
    findings
}
