//! Session behaviour: what participants *do*, beyond what they answer.
//!
//! Eyeorg instruments everything (§3.3): time on each video, play/pause/
//! seek actions, out-of-focus episodes, and whether a video was skipped.
//! §4.2 then mines these signals — Fig. 4a (time on site), Fig. 4b
//! (action counts, including the 714/724-seek anomalies), Fig. 5
//! (out-of-focus time growing with video load time L) — and §4.3 turns
//! them into filters. This module generates those signals per
//! participant/video with the couplings the paper observed:
//!
//! * paid participants take slightly *longer* than trusted ones, driven
//!   by out-of-focus time and video transfer time, not by fewer actions;
//! * distraction probability grows with how long the video took to load;
//! * timeline tests require the full preload before interaction, A/B
//!   tests can start playing immediately;
//! * 1–2 % of paid participants skip interacting with some video;
//! * frenetic participants produce hundreds of seeks in minutes.

use eyeorg_net::{SimDuration, SimTime};
use eyeorg_video::{preload_time, Video};
use eyeorg_stats::rng::Rng;

use crate::participant::{Participant, ParticipantClass, ParticipantType, Persona};

/// The experiment type the behaviour differs across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestKind {
    /// Scrub-the-slider timeline test (full preload required).
    Timeline,
    /// Side-by-side A/B test (progressive playback).
    Ab,
}

/// Instrumentation record for one participant on one video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSession {
    /// How long the video took to arrive (download/preload time).
    pub video_load: SimDuration,
    /// Total time spent on this video's test, *including* load and
    /// out-of-focus time.
    pub time_spent: SimDuration,
    /// Seek actions (timeline scrubbing).
    pub seeks: u32,
    /// Play actions.
    pub plays: u32,
    /// Pause actions.
    pub pauses: u32,
    /// Total time the Eyeorg tab was out of focus.
    pub out_of_focus: SimDuration,
    /// The participant never interacted with the video (soft-rule
    /// violation).
    pub skipped: bool,
}

impl VideoSession {
    /// All interactions combined.
    pub fn actions(&self) -> u32 {
        self.seeks + self.plays + self.pauses
    }
}

/// Per-`(video, kind)` constants of the behaviour model, precomputed so
/// the campaign engines pay the frame-count arithmetic once per stimulus
/// instead of once per response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionProfile {
    /// Wall duration of the capture, seconds.
    pub dur_secs: f64,
    /// Download size of what the participant must fetch for this test.
    pub bytes: u64,
}

impl SessionProfile {
    /// Extract the behaviour constants for one stimulus.
    pub fn of(video: &Video, kind: TestKind) -> SessionProfile {
        SessionProfile {
            dur_secs: video.duration().as_secs_f64(),
            bytes: video_bytes_estimate(video, kind),
        }
    }
}

/// Simulate the behaviour of one participant on one video.
pub fn video_session(
    video: &Video,
    participant: &Participant,
    kind: TestKind,
    video_label: &str,
) -> VideoSession {
    video_session_profiled(
        &SessionProfile::of(video, kind),
        &participant.persona(),
        kind,
        video_label,
    )
}

/// [`video_session`] against precomputed per-stimulus constants and a
/// trait-core [`Persona`] — the flat campaign engine's entry point.
/// Bit-identical to [`video_session`] for matching inputs (the wrapper
/// above *is* this function).
pub fn video_session_profiled(
    profile: &SessionProfile,
    participant: &Persona,
    kind: TestKind,
    video_label: &str,
) -> VideoSession {
    video_session_with_rng(profile, participant, kind, behavior_rng(participant.seed, video_label))
}

/// The draw sequence behind [`video_session_profiled`], with the leaf
/// RNG supplied by the caller. The fast path derives that RNG from a
/// hoisted per-participant `"behavior"` parent (or a bulk-expanded
/// per-stimulus seed plane) instead of re-deriving
/// `seed → "behavior" → label` per cell; for an RNG seeded from the same
/// `(participant, label)` pair the output is bit-identical.
pub(crate) fn video_session_with_rng(
    profile: &SessionProfile,
    participant: &Persona,
    kind: TestKind,
    mut rng: Rng,
) -> VideoSession {
    let video_load = preload_time(profile.bytes, participant.bandwidth_bps);

    // --- skipping (soft-rule violation) --------------------------------
    let skip_p = match (participant.ptype, participant.class) {
        (ParticipantType::Trusted, _) => 0.002,
        (_, ParticipantClass::RandomClicker) => 0.08,
        (_, ParticipantClass::Bot) => 0.30,
        (_, ParticipantClass::Sloppy) => 0.025,
        _ => 0.005,
    };
    if rng.random_bool(skip_p) {
        return VideoSession {
            video_load,
            time_spent: video_load + SimDuration::from_millis(rng.random_range(800..3_000)),
            seeks: 0,
            plays: 0,
            pauses: 0,
            out_of_focus: SimDuration::ZERO,
            skipped: true,
        };
    }

    // --- interaction counts --------------------------------------------
    let (seeks, plays, pauses) = match kind {
        TestKind::Timeline => {
            let seeks = match participant.class {
                ParticipantClass::Frenetic => rng.random_range(250..700u32),
                ParticipantClass::Diligent => rng.random_range(15..60u32),
                ParticipantClass::Average => rng.random_range(10..45u32),
                ParticipantClass::Sloppy => rng.random_range(4..15u32),
                ParticipantClass::RandomClicker => rng.random_range(1..6u32),
                ParticipantClass::Bot => rng.random_range(0..3u32),
            };
            (seeks, 0, 0)
        }
        TestKind::Ab => {
            let plays = match participant.class {
                ParticipantClass::Diligent | ParticipantClass::Average => rng.random_range(1..4u32),
                ParticipantClass::Frenetic => rng.random_range(5..20u32),
                _ => 1,
            };
            let pauses = plays.saturating_sub(1);
            (rng.random_range(0..3u32), plays, pauses)
        }
    };

    // --- out-of-focus episodes (Fig. 5) ---------------------------------
    // Distraction probability grows with the log of the load time;
    // trusted A/B participants essentially never switch away.
    let load_secs = video_load.as_secs_f64();
    let base = match (participant.ptype, kind) {
        (ParticipantType::Trusted, TestKind::Ab) => 0.002,
        (ParticipantType::Trusted, TestKind::Timeline) => 0.018,
        (ParticipantType::Paid, TestKind::Ab) => 0.035,
        (ParticipantType::Paid, TestKind::Timeline) => 0.045,
    };
    let class_mult = match participant.class {
        ParticipantClass::Diligent => 0.5,
        ParticipantClass::Average => 1.0,
        ParticipantClass::Sloppy => 2.0,
        ParticipantClass::RandomClicker => 2.5,
        ParticipantClass::Frenetic => 1.0,
        ParticipantClass::Bot => 0.0, // scripts do not get distracted
    };
    let p_distract = (base * class_mult * (1.0 + 1.6 * (1.0 + load_secs).ln())).min(0.9);
    let out_of_focus = if rng.random_bool(p_distract) {
        // Lognormal-ish episode: median ~4 s, occasionally much longer;
        // waits on slow transfers breed longer absences.
        let z: f64 = crate::dist_normal(&mut rng);
        let scale = 4.0 * (1.0 + load_secs / 25.0);
        SimDuration::from_secs_f64((scale * (0.9 * z).exp()).clamp(0.3, 120.0))
    } else {
        SimDuration::ZERO
    };

    // --- time accounting --------------------------------------------------
    let dur = profile.dur_secs;
    let interaction_time = match kind {
        TestKind::Timeline => {
            // Scrubbing: repeated passes over the video plus a per-seek
            // cost and the helper-decision pause.
            dur * rng.random_range(1.1..2.2)
                + f64::from(seeks) * rng.random_range(0.2..0.5)
                + rng.random_range(2.0..6.0)
        }
        TestKind::Ab => {
            // Mostly a single synchronized viewing plus a quick decision;
            // replays add fractional passes.
            dur * (1.0 + 0.25 * f64::from(plays.saturating_sub(1))) * rng.random_range(0.9..1.15)
                + rng.random_range(1.0..4.0)
        }
    };
    // Timeline requires the preload to finish before interaction; A/B
    // overlaps playback with the (progressive) download.
    let load_component = match kind {
        TestKind::Timeline => load_secs,
        TestKind::Ab => (load_secs - dur).max(0.0), // only stall overhang
    };
    let time_spent = SimDuration::from_secs_f64(
        load_component + interaction_time + out_of_focus.as_secs_f64(),
    );

    VideoSession { video_load, time_spent, seeks, plays, pauses, out_of_focus, skipped: false }
}

/// Size of what this participant must download for the test: the capture
/// itself for a timeline test, or a two-sided splice for A/B. We estimate
/// from the capture's duration and grid rather than running the encoder
/// per participant (the encoder is exercised separately; per-response
/// encoding would dominate campaign runtime for no modelling gain).
fn video_bytes_estimate(video: &Video, kind: TestKind) -> u64 {
    let frames = video.frame_count() as u64;
    // The analysis grid is 64×36, but what participants download is the
    // real 1280×720 webm webpeg produced; we scale the delta-codec size
    // model to capture resolution (≈33 kB keyframes, ≈4 kB deltas),
    // giving the 0.5–5 MB files whose transfer times drive Fig. 5.
    let per_frame = 4_000u64;
    let keyframes = frames / 50 + 1;
    let base = frames * per_frame + keyframes * 33_000;
    match kind {
        TestKind::Timeline => base,
        TestKind::Ab => base * 2,
    }
}

/// Time spent reading the instructions before the first video.
pub fn instruction_time(participant: &Participant) -> SimDuration {
    instruction_time_persona(&participant.persona())
}

/// [`instruction_time`] from a trait-core [`Persona`].
pub fn instruction_time_persona(participant: &Persona) -> SimDuration {
    instruction_time_with_rng(participant, behavior_rng(participant.seed, "instructions"))
}

/// [`instruction_time_persona`] with the `"instructions"`-stream RNG
/// supplied by the caller (fast-path entry).
pub(crate) fn instruction_time_with_rng(participant: &Persona, mut rng: Rng) -> SimDuration {
    let secs = match participant.class {
        ParticipantClass::Diligent => rng.random_range(20.0..60.0),
        ParticipantClass::Average => rng.random_range(12.0..40.0),
        ParticipantClass::Sloppy => rng.random_range(5.0..20.0),
        ParticipantClass::RandomClicker => rng.random_range(2.0..8.0),
        ParticipantClass::Frenetic => rng.random_range(3.0..15.0),
        ParticipantClass::Bot => rng.random_range(0.1..1.0),
    };
    SimDuration::from_secs_f64(secs)
}

fn behavior_rng(seed: eyeorg_stats::Seed, label: &str) -> Rng {
    Rng::seed_from_u64(seed.derive("behavior").derive(label).value())
}

/// A participant's total time across their assigned videos (the Fig. 4a
/// "time spent on site" statistic).
pub fn total_time_on_site(sessions: &[VideoSession], participant: &Participant) -> SimDuration {
    total_time_on_site_persona(sessions, &participant.persona())
}

/// [`total_time_on_site`] from a trait-core [`Persona`].
pub fn total_time_on_site_persona(
    sessions: &[VideoSession],
    participant: &Persona,
) -> SimDuration {
    let mut total = instruction_time_persona(participant);
    for s in sessions {
        total = total + s.time_spent;
    }
    total
}

/// Timestamp helper: convert a per-session wall duration into a
/// "submitted at" instant given a session start.
pub fn submitted_at(start: SimTime, sessions: &[VideoSession], idx: usize) -> SimTime {
    let mut t = start;
    for s in sessions.iter().take(idx + 1) {
        t += s.time_spent;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::PopulationProfile;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(40), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(40));
        Video::capture(trace, 10, SimDuration::from_secs(4))
    }

    #[test]
    fn frenetic_participants_dominate_action_counts() {
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(41), 800);
        let mut frenetic_max = 0;
        let mut normal_max = 0;
        for p in &pop {
            let s = video_session(&v, p, TestKind::Timeline, "v1");
            if p.class == ParticipantClass::Frenetic {
                frenetic_max = frenetic_max.max(s.actions());
            } else {
                normal_max = normal_max.max(s.actions());
            }
        }
        assert!(frenetic_max > 200, "frenetic max {frenetic_max}");
        assert!(frenetic_max > 3 * normal_max / 2, "{frenetic_max} vs {normal_max}");
    }

    #[test]
    fn some_paid_participants_skip_videos() {
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(42), 1000);
        let skips: usize = pop
            .iter()
            .map(|p| {
                (0..6)
                    .filter(|i| {
                        video_session(&v, p, TestKind::Timeline, &format!("v{i}")).skipped
                    })
                    .count()
            })
            .sum();
        let rate = skips as f64 / (1000.0 * 6.0);
        assert!((0.005..0.06).contains(&rate), "skip rate {rate}");
    }

    #[test]
    fn trusted_almost_never_skip() {
        let v = video();
        let pop = PopulationProfile::trusted().generate(Seed(43), 500);
        let skips: usize = pop
            .iter()
            .filter(|p| video_session(&v, p, TestKind::Timeline, "v1").skipped)
            .count();
        assert!(skips <= 3, "trusted skips {skips}");
    }

    #[test]
    fn timeline_takes_longer_than_ab() {
        // Fig. 4a: the timeline test takes ~3x longer on average.
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(44), 300);
        let avg = |kind| {
            pop.iter()
                .map(|p| video_session(&v, p, kind, "v1").time_spent.as_secs_f64())
                .sum::<f64>()
                / 300.0
        };
        let tl = avg(TestKind::Timeline);
        let ab = avg(TestKind::Ab);
        assert!(tl > 1.5 * ab, "timeline {tl:.1}s vs A/B {ab:.1}s");
    }

    #[test]
    fn distraction_grows_with_load_time() {
        // Same population, same videos, but slower connections → longer
        // loads → more out-of-focus time (Fig. 5).
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(45), 2000);
        let focus_loss = |bw: u64| {
            pop.iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.bandwidth_bps = bw;
                    video_session(&v, &p, TestKind::Timeline, "v1")
                        .out_of_focus
                        .as_secs_f64()
                })
                .sum::<f64>()
        };
        let fast = focus_loss(50_000_000);
        let slow = focus_loss(300_000);
        assert!(slow > fast * 1.2, "slow {slow:.0}s vs fast {fast:.0}s");
    }

    #[test]
    fn sessions_deterministic() {
        let v = video();
        let p = &PopulationProfile::paid().generate(Seed(46), 1)[0];
        assert_eq!(
            video_session(&v, p, TestKind::Timeline, "v1"),
            video_session(&v, p, TestKind::Timeline, "v1")
        );
    }

    #[test]
    fn time_accounting_consistent() {
        let v = video();
        let pop = PopulationProfile::paid().generate(Seed(47), 50);
        for p in &pop {
            let sessions: Vec<VideoSession> = (0..6)
                .map(|i| video_session(&v, p, TestKind::Timeline, &format!("v{i}")))
                .collect();
            let total = total_time_on_site(&sessions, p);
            let sum: f64 = sessions.iter().map(|s| s.time_spent.as_secs_f64()).sum();
            assert!(total.as_secs_f64() >= sum, "total includes instruction time");
            let end = submitted_at(SimTime::ZERO, &sessions, 5);
            assert!((end.as_secs_f64() - sum).abs() < 1e-6);
        }
    }
}
