pub use eyeorg_core as core;
