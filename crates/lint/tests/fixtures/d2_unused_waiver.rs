//! D2 unused waiver: simulated time needs no exemption.

// lint:allow(D2): left behind after the port to SimTime
pub fn add_micros(now_micros: u64, delta: u64) -> u64 {
    now_micros + delta
}
