//! Histograms with fixed-width and Freedman–Diaconis binning.
//!
//! Fig. 9 of the paper shows per-site histograms of `UserPerceivedPLT`
//! responses, from which three distribution shapes are read off (tight
//! unimodal, spread unimodal, multimodal). [`Histogram`] provides the
//! binned counts; [`crate::modes`] performs the shape classification.

/// A histogram over `[lo, hi)` with equal-width bins (the final bin is
/// closed on the right so `hi` itself is counted).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u32>,
    /// Observations outside `[lo, hi]`, counted but not binned.
    outside: u32,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    /// Returns `None` when `bins == 0` or the range is empty/invalid.
    pub fn with_bins(sample: &[f64], lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        // NaN-safe: any incomparable bound rejects the range.
        if bins == 0 || hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let mut h = Histogram { lo, hi, counts: vec![0; bins], outside: 0 };
        for &v in sample {
            h.add(v);
        }
        Some(h)
    }

    /// Build a histogram over the sample's own range using the
    /// Freedman–Diaconis rule (`bin width = 2·IQR·n^(-1/3)`), the standard
    /// robust choice for unknown response distributions. Falls back to
    /// Sturges' rule when the IQR is zero (heavily tied data) and to a
    /// single bin for degenerate (constant) samples. Returns `None` on an
    /// empty sample.
    pub fn auto(sample: &[f64]) -> Option<Histogram> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        let lo = sorted[0];
        // lint:allow(D4): guarded by the is_empty early return above
        let hi = *sorted.last().expect("non-empty");
        if hi == lo {
            // All values identical: one bin around the value.
            return Histogram::with_bins(sample, lo - 0.5, lo + 0.5, 1);
        }
        let n = sample.len() as f64;
        let iqr = crate::quantile::percentile_sorted(&sorted, 75.0)
            - crate::quantile::percentile_sorted(&sorted, 25.0);
        let bins = if iqr > 0.0 {
            let width = 2.0 * iqr / n.cbrt();
            (((hi - lo) / width).ceil() as usize).clamp(1, 512)
        } else {
            (n.log2().ceil() as usize + 1).clamp(1, 512)
        };
        Histogram::with_bins(sample, lo, hi, bins)
    }

    /// An empty histogram over `[lo, hi]` with `bins` equal-width bins —
    /// the streaming-accumulator constructor ([`Histogram::with_bins`]
    /// minus the eager fill). Returns `None` under the same conditions.
    pub fn empty(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        Histogram::with_bins(&[], lo, hi, bins)
    }

    /// Record one observation (out-of-range and non-finite values count
    /// toward [`Histogram::outside`], exactly as batch construction does).
    pub fn record(&mut self, v: f64) {
        self.add(v);
    }

    /// Fold another histogram's counts into this one. Integer bin adds
    /// are exact and associative, so any merge tree over the same
    /// observations yields identical counts — the property the sharded
    /// campaign engine's order-pinned merge relies on. Returns `false`
    /// (leaving `self` untouched) when the binning configurations differ.
    #[must_use]
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.outside += other.outside;
        true
    }

    fn add(&mut self, v: f64) {
        if !v.is_finite() || v < self.lo || v > self.hi {
            self.outside += 1;
            return;
        }
        let bins = self.counts.len();
        // lint:allow(D7): float division never panics (bins >= 1 by construction)
        let width = (self.hi - self.lo) / bins as f64;
        // lint:allow(D7): float division never panics; width is finite for a valid config
        let idx = (((v - self.lo) / width) as usize).min(bins - 1);
        // lint:allow(D7): idx is clamped by .min(bins - 1)
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of observations that fell outside `[lo, hi]` (or were
    /// non-finite) and are therefore not represented in any bin.
    pub fn outside(&self) -> u32 {
        self.outside
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Total binned observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// The raw histogram state, bit-exact — the checkpoint layer's
    /// serialization substrate (bounds as `to_bits()`).
    pub fn state(&self) -> HistogramState {
        HistogramState {
            lo_bits: self.lo.to_bits(),
            hi_bits: self.hi.to_bits(),
            counts: self.counts.clone(),
            outside: self.outside,
        }
    }

    /// Rebuild a histogram from raw state; `from_state(state())` is
    /// bit-identical to the original. Untrusted states are validated
    /// against the [`Histogram::with_bins`] constructor rule (at least
    /// one bin, `hi > lo` under `partial_cmp`) and come back as a typed
    /// error, never a panic.
    pub fn from_state(s: &HistogramState) -> Result<Histogram, crate::stream::StateError> {
        let lo = f64::from_bits(s.lo_bits);
        let hi = f64::from_bits(s.hi_bits);
        if s.counts.is_empty() || hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(crate::stream::StateError("histogram range/bins invalid"));
        }
        Ok(Histogram { lo, hi, counts: s.counts.clone(), outside: s.outside })
    }

    /// Bin counts smoothed with a centred moving average of half-width `w`
    /// (window `2w+1`, truncated at the edges). Smoothing before peak
    /// detection suppresses single-response jitter in sparse per-video
    /// histograms.
    pub fn smoothed(&self, w: usize) -> Vec<f64> {
        let n = self.counts.len();
        (0..n)
            .map(|i| {
                let a = i.saturating_sub(w);
                let b = (i + w).min(n - 1);
                let sum: u32 = self.counts[a..=b].iter().sum();
                sum as f64 / (b - a + 1) as f64
            })
            .collect()
    }
}

/// Raw [`Histogram`] state — every private field, bounds as
/// `to_bits()`. Produced by [`Histogram::state`], consumed by
/// [`Histogram::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    /// `lo.to_bits()`.
    pub lo_bits: u64,
    /// `hi.to_bits()`.
    pub hi_bits: u64,
    /// Per-bin counts (length = bin count).
    pub counts: Vec<u32>,
    /// Out-of-range / non-finite observations.
    pub outside: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_is_bit_exact() {
        let h = Histogram::with_bins(&[0.1, 0.5, 1.0, f64::NAN, 3.0], 0.0, 2.0, 4).unwrap();
        let back = Histogram::from_state(&h.state()).unwrap();
        assert_eq!(back, h);
        assert_eq!(format!("{back:?}"), format!("{h:?}"));
        // Corrupt states surface as typed errors, never panics.
        let mut s = h.state();
        s.counts.clear();
        assert!(Histogram::from_state(&s).is_err());
        let mut s = h.state();
        s.hi_bits = f64::NAN.to_bits();
        assert!(Histogram::from_state(&s).is_err());
        let mut s = h.state();
        s.hi_bits = s.lo_bits;
        assert!(Histogram::from_state(&s).is_err());
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Histogram::with_bins(&[1.0], 0.0, 1.0, 0).is_none());
        assert!(Histogram::with_bins(&[1.0], 1.0, 1.0, 4).is_none());
        assert!(Histogram::with_bins(&[1.0], 2.0, 1.0, 4).is_none());
        assert!(Histogram::auto(&[]).is_none());
    }

    #[test]
    fn binning_boundaries() {
        let h = Histogram::with_bins(&[0.0, 0.9, 1.0, 1.1, 2.0], 0.0, 2.0, 2).unwrap();
        // [0,1): {0.0, 0.9}; [1,2]: {1.0, 1.1, 2.0}
        assert_eq!(h.counts(), &[2, 3]);
        assert_eq!(h.outside(), 0);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let h = Histogram::with_bins(&[-1.0, 0.5, 3.0, f64::NAN], 0.0, 2.0, 2).unwrap();
        assert_eq!(h.total(), 1);
        assert_eq!(h.outside(), 3);
    }

    #[test]
    fn bin_centers_and_width() {
        let h = Histogram::with_bins(&[], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn auto_handles_constant_sample() {
        let h = Histogram::auto(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().len(), 1);
    }

    #[test]
    fn auto_bin_count_reasonable() {
        // 1000 uniform-ish points: FD rule should give O(10) bins, not 1 or 512.
        let sample: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::auto(&sample).unwrap();
        assert!(h.counts().len() >= 4 && h.counts().len() <= 64, "{}", h.counts().len());
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn merge_matches_batch_construction() {
        let all = [0.1, 0.5, 1.0, 1.5, 1.9, -0.5, 2.5];
        let batch = Histogram::with_bins(&all, 0.0, 2.0, 4).unwrap();
        let mut left = Histogram::empty(0.0, 2.0, 4).unwrap();
        let mut right = Histogram::empty(0.0, 2.0, 4).unwrap();
        for &v in &all[..3] {
            left.record(v);
        }
        for &v in &all[3..] {
            right.record(v);
        }
        assert!(left.merge(&right));
        assert_eq!(left, batch);
    }

    #[test]
    fn merge_rejects_mismatched_binning() {
        let mut a = Histogram::empty(0.0, 2.0, 4).unwrap();
        let b = Histogram::empty(0.0, 2.0, 8).unwrap();
        let c = Histogram::empty(0.0, 3.0, 4).unwrap();
        assert!(!a.merge(&b));
        assert!(!a.merge(&c));
        assert_eq!(a, Histogram::empty(0.0, 2.0, 4).unwrap());
    }

    #[test]
    fn smoothing_preserves_mass_location() {
        let h = Histogram::with_bins(&[5.0, 5.0, 5.0, 5.1], 0.0, 10.0, 10).unwrap();
        let s = h.smoothed(1);
        // Peak must remain at/adjacent to bin 5.
        let max_i = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((4..=6).contains(&max_i));
    }
}
