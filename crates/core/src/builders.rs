//! Stimulus builders: from a site corpus to campaign-ready videos.
//!
//! These wire the full webpeg pipeline (§3.1–3.2) for the paper's three
//! campaign types:
//!
//! * [`timeline_stimuli`] — capture each site once (5 loads, keep the
//!   median-onload video) under a single configuration;
//! * [`protocol_ab_stimuli`] — capture each site under HTTP/1.1 (A) and
//!   HTTP/2 (B);
//! * [`adblock_ab_stimuli`] — capture each site with ads (A) and with a
//!   given ad blocker installed (B); the protocol is *not* forced
//!   ("Chrome will default to HTTP/2 if the target website supports it").

use eyeorg_browser::{AdBlocker, BrowserConfig};
use eyeorg_http::Protocol;
use eyeorg_stats::Seed;
use eyeorg_video::{capture_median, CaptureConfig};
use eyeorg_workload::Website;

use crate::experiment::{AbStimulus, TimelineStimulus};

/// Capture every site once under `browser` (median of the configured
/// repeats), producing timeline stimuli.
pub fn timeline_stimuli(
    sites: &[Website],
    browser: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<TimelineStimulus> {
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| TimelineStimulus {
            name: site.name.clone(),
            video: capture_median(site, browser, seed.derive_index("tl-cap", i as u64), capture),
        })
        .collect()
}

/// Capture every site under HTTP/1.1 (A) and HTTP/2 (B) for the
/// protocol-comparison campaign. Both sides share the same per-site seed
/// stream family, but every load draws independently — exactly like
/// capturing twice on a live network.
pub fn protocol_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let h1 = base.clone().with_protocol(Protocol::Http1);
            let h2 = base.clone().with_protocol(Protocol::Http2);
            AbStimulus {
                name: site.name.clone(),
                a: capture_median(site, &h1, seed.derive_index("h1-cap", i as u64), capture),
                b: capture_median(site, &h2, seed.derive_index("h2-cap", i as u64), capture),
            }
        })
        .collect()
}

/// Capture every site with ads (A) and under `blocker` (B) for the
/// ad-blocker campaign.
pub fn adblock_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    blocker: AdBlocker,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let with_blocker = base.clone().with_adblocker(blocker);
            AbStimulus {
                name: site.name.clone(),
                a: capture_median(site, base, seed.derive_index("ads-cap", i as u64), capture),
                b: capture_median(
                    site,
                    &with_blocker,
                    seed.derive_index("blk-cap", i as u64),
                    capture,
                ),
            }
        })
        .collect()
}

/// Capture every site under plain HTTP/2 (A) and HTTP/2 with server push
/// of render-blocking stylesheets (B): the §6 "push/priority strategies"
/// experiment the paper names as future work.
pub fn push_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let pushed = base.clone().with_server_push();
            AbStimulus {
                name: site.name.clone(),
                a: capture_median(site, base, seed.derive_index("plain-cap", i as u64), capture),
                b: capture_median(site, &pushed, seed.derive_index("push-cap", i as u64), capture),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_workload::{ad_heavy, alexa_like};

    fn quick_capture() -> CaptureConfig {
        CaptureConfig { repeats: 2, ..CaptureConfig::default() }
    }

    #[test]
    fn timeline_builder_produces_one_stimulus_per_site() {
        let sites = alexa_like(Seed(1), 3);
        let st = timeline_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(2));
        assert_eq!(st.len(), 3);
        for (s, site) in st.iter().zip(&sites) {
            assert_eq!(s.name, site.name);
            assert!(s.video.trace().onload.is_some());
        }
    }

    #[test]
    fn protocol_builder_sides_use_their_protocols() {
        let sites = alexa_like(Seed(3), 2);
        let st = protocol_ab_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(4));
        for s in &st {
            assert_eq!(s.a.trace().protocol, "h1");
            assert_eq!(s.b.trace().protocol, "h2");
        }
    }

    #[test]
    fn adblock_builder_marks_blocker_side() {
        let sites = ad_heavy(Seed(5), 2, 1);
        let st = adblock_ab_stimuli(
            &sites,
            &BrowserConfig::new(),
            AdBlocker::Ghostery,
            &quick_capture(),
            Seed(6),
        );
        for s in &st {
            assert_eq!(s.a.trace().adblocker, None);
            assert_eq!(s.b.trace().adblocker.as_deref(), Some("ghostery"));
        }
    }
}
