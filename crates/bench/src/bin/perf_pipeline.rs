//! Pipeline performance harness (no external benchmark framework).
//!
//! Times the three stages of the reproduction pipeline — corpus
//! generation, webpeg capture fan-out, and campaign execution — at 1, 2,
//! and the machine's available thread count, using plain
//! [`std::time::Instant`]. Writes `results/BENCH_pipeline.json` and
//! **exits non-zero** when any multi-threaded run produces a campaign
//! that is not byte-identical to the single-threaded run (the
//! determinism contract of `eyeorg_stats::par`).
//!
//! Sizing: 20 sites × 3 capture repeats × 300 participants — the
//! mid-size regime where both the capture fan-out and the
//! per-participant response generation have enough work to spread.

use std::time::Instant;

use eyeorg_bench::campaigns::{capture_browser, protocol_capture_browser};
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{default_threads, Seed};
use eyeorg_video::{shared_capture_cache, CaptureConfig};
use eyeorg_workload::alexa_like;

const SITES: usize = 20;
const REPEATS: usize = 3;
const PARTICIPANTS: usize = 300;

struct StageTimes {
    threads: usize,
    capture_secs: f64,
    timeline_secs: f64,
    ab_secs: f64,
}

fn main() {
    // Instrumentation on: the determinism gate below also compares the
    // observability counters across thread counts, and the stage timings
    // measure the enabled-path overhead the counters are allowed to cost.
    eyeorg_obs::enable();
    let seed = Seed(2016).derive("perf-pipeline");
    let max_threads = default_threads().max(4);
    let mut counts = vec![1usize, 2, 4, max_threads];
    counts.dedup();

    let t0 = Instant::now();
    let sites = alexa_like(seed.derive("sites"), SITES);
    let corpus_secs = t0.elapsed().as_secs_f64();
    let capture = CaptureConfig { repeats: REPEATS, ..CaptureConfig::default() };

    let mut timings: Vec<StageTimes> = Vec::new();
    let mut baseline: Option<(String, String)> = None;
    let mut identical = true;

    let mut counter_baseline: Option<String> = None;
    let mut counters_identical = true;
    for &threads in &counts {
        // Cold captures every round: the shared cache would otherwise
        // answer the repeat rounds instantly and the comparison across
        // thread counts would time map lookups, not captures.
        shared_capture_cache().clear();
        // Fresh counters per round so each round's totals are directly
        // comparable: equal workload must yield equal counts at every
        // thread count.
        eyeorg_obs::reset();
        let t = Instant::now();
        let tl_stimuli = timeline_stimuli_threads(
            &sites,
            &capture_browser(),
            &capture,
            seed.derive("tl-cap"),
            threads,
        );
        let capture_secs = t.elapsed().as_secs_f64();

        let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
        let t = Instant::now();
        let tl = run_timeline_campaign(
            tl_stimuli,
            &CrowdFlower,
            PARTICIPANTS,
            &cfg,
            seed.derive("tl-run"),
        );
        let timeline_secs = t.elapsed().as_secs_f64();

        let ab_stimuli = protocol_ab_stimuli(
            &sites,
            &protocol_capture_browser(),
            &capture,
            seed.derive("ab-cap"),
        );
        let t = Instant::now();
        let ab = run_ab_campaign(
            ab_stimuli,
            &CrowdFlower,
            PARTICIPANTS,
            &cfg,
            seed.derive("ab-run"),
        );
        let ab_secs = t.elapsed().as_secs_f64();

        // The Debug rendering covers every field of every row, so equal
        // strings mean byte-identical campaigns.
        let fingerprint = (format!("{tl:?}"), format!("{ab:?}"));
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(base) => {
                if *base != fingerprint {
                    identical = false;
                    eprintln!(
                        "DIVERGENCE: {threads}-thread campaign differs from 1-thread run"
                    );
                }
            }
        }
        let counter_fp = eyeorg_obs::snapshot("perf-pipeline", threads).counter_fingerprint();
        match &counter_baseline {
            None => counter_baseline = Some(counter_fp),
            Some(base) => {
                if *base != counter_fp {
                    identical = false;
                    counters_identical = false;
                    eprintln!(
                        "DIVERGENCE: {threads}-thread observability counters differ from 1-thread run"
                    );
                }
            }
        }
        timings.push(StageTimes { threads, capture_secs, timeline_secs, ab_secs });
        println!(
            "threads={threads:>2}  capture {capture_secs:7.3}s  timeline {timeline_secs:7.3}s  ab {ab_secs:7.3}s"
        );
    }

    let at = |n: usize, f: &dyn Fn(&StageTimes) -> f64| {
        timings.iter().find(|t| t.threads == n).map(f)
    };
    let speedup = |f: &dyn Fn(&StageTimes) -> f64| -> f64 {
        match (at(1, f), at(4, f)) {
            (Some(one), Some(four)) if four > 0.0 => one / four,
            _ => 1.0,
        }
    };
    let capture_speedup = speedup(&|t| t.capture_secs);
    let timeline_speedup = speedup(&|t| t.timeline_secs);
    let ab_speedup = speedup(&|t| t.ab_secs);
    let campaign_speedup = speedup(&|t| t.timeline_secs + t.ab_secs);

    // The capture cache's effect is hardware-independent: time the same
    // capture fan-out cold (cache cleared) and warm (fully populated).
    shared_capture_cache().clear();
    let t = Instant::now();
    let cold = timeline_stimuli_threads(
        &sites,
        &capture_browser(),
        &capture,
        seed.derive("cache-probe"),
        1,
    );
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = timeline_stimuli_threads(
        &sites,
        &capture_browser(),
        &capture,
        seed.derive("cache-probe"),
        1,
    );
    let warm_secs = t.elapsed().as_secs_f64();
    if format!("{:?}", cold.iter().map(|s| &s.video).collect::<Vec<_>>())
        != format!("{:?}", warm.iter().map(|s| &s.video).collect::<Vec<_>>())
    {
        identical = false;
        eprintln!("DIVERGENCE: cached capture differs from cold capture");
    }
    let cache_speedup = if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::MAX };

    // lint:allow(D8): cpus only annotates BENCH_pipeline.json metadata, never digest bytes
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    let mut rows = String::new();
    for t in &timings {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"threads\": {}, \"capture_secs\": {:.6}, \"timeline_secs\": {:.6}, \"ab_secs\": {:.6}}}",
            t.threads, t.capture_secs, t.timeline_secs, t.ab_secs
        ));
    }
    let env = eyeorg_bench::env_metadata_json();
    let json = format!(
        "{{\n  \"sites\": {SITES},\n  \"repeats\": {REPEATS},\n  \"participants\": {PARTICIPANTS},\n  {env},\n  \"corpus_secs\": {corpus_secs:.6},\n  \"timings\": [\n{rows}\n  ],\n  \"speedup_at_4_threads\": {{\"capture\": {capture_speedup:.3}, \"timeline\": {timeline_speedup:.3}, \"ab\": {ab_speedup:.3}, \"campaign\": {campaign_speedup:.3}}},\n  \"capture_cache\": {{\"cold_secs\": {cold_secs:.6}, \"warm_secs\": {warm_secs:.6}, \"speedup\": {cache_speedup:.3}}},\n  \"counters_identical_across_thread_counts\": {counters_identical},\n  \"identical_across_thread_counts\": {identical}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!(
        "speedup at 4 threads ({cpus} cpu(s) available): capture {capture_speedup:.2}x, timeline {timeline_speedup:.2}x, ab {ab_speedup:.2}x"
    );
    println!("capture cache: cold {cold_secs:.3}s, warm {warm_secs:.3}s ({cache_speedup:.0}x)");
    println!("wrote results/BENCH_pipeline.json");

    if !identical {
        eprintln!("FAIL: campaigns diverged across thread counts");
        std::process::exit(1);
    }
}
