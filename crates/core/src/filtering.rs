//! The §4.3 filtering strategy.
//!
//! The paper settles on four techniques, applied in this order:
//!
//! 1. **Engagement / actions** — drop participants with 50 % more video
//!    interactions than the most active trusted participant (369 seeks →
//!    threshold 553). Catches the frenetic outliers.
//! 2. **Engagement / focus** — drop participants who switched away from
//!    the Eyeorg tab for more than 10 s, *provided* the video itself was
//!    delivered within those 10 s (long transfers excuse distraction).
//! 3. **Soft rules** — drop participants who skipped (never played or
//!    scrubbed) even one video.
//! 4. **Control questions** — drop participants who failed any control.
//!
//! Finally, **wisdom of the crowd**: for timeline campaigns, keep only
//! responses between the 25th and 75th percentile of each video's
//! `UserPerceivedPLT` distribution.
//!
//! Each technique is a [`ParticipantFilter`] so experimenters can ablate
//! them individually (the `filtering` bench does exactly that).

use std::collections::BTreeSet;

use eyeorg_crowd::VideoSession;
use eyeorg_stats::percentile_band;

use crate::campaign::{AbCampaign, ControlRow, TimelineCampaign};

/// The paper's action threshold: the most active trusted participant
/// performed 369 seek actions; paid participants 50 % above that are
/// dropped.
pub const TRUSTED_MAX_SEEKS: u32 = 369;

/// Default focus filter threshold (seconds out of focus).
pub const MAX_OUT_OF_FOCUS_SECS: f64 = 10.0;

/// A participant-level filter.
pub trait ParticipantFilter {
    /// Name used in Table-1-style reports.
    fn name(&self) -> &'static str;
    /// Whether this participant should be dropped, given their sessions
    /// and control outcomes.
    fn drops(&self, sessions: &[VideoSession], controls: &[&ControlRow]) -> bool;
}

/// Filter 1: excessive interaction counts.
#[derive(Debug, Clone, Copy)]
pub struct ActionsFilter {
    /// Drop when total actions exceed this.
    pub max_actions: u32,
}

impl Default for ActionsFilter {
    fn default() -> Self {
        ActionsFilter { max_actions: TRUSTED_MAX_SEEKS + TRUSTED_MAX_SEEKS / 2 }
    }
}

impl ParticipantFilter for ActionsFilter {
    fn name(&self) -> &'static str {
        "engagement"
    }

    fn drops(&self, sessions: &[VideoSession], _controls: &[&ControlRow]) -> bool {
        sessions.iter().any(|s| s.actions() > self.max_actions)
    }
}

/// Filter 2: distraction, excused while the video is still transferring.
#[derive(Debug, Clone, Copy)]
pub struct FocusFilter {
    /// Out-of-focus seconds beyond which a participant is dropped.
    pub max_secs: f64,
}

impl Default for FocusFilter {
    fn default() -> Self {
        FocusFilter { max_secs: MAX_OUT_OF_FOCUS_SECS }
    }
}

impl ParticipantFilter for FocusFilter {
    fn name(&self) -> &'static str {
        "engagement"
    }

    fn drops(&self, sessions: &[VideoSession], _controls: &[&ControlRow]) -> bool {
        sessions.iter().any(|s| {
            s.out_of_focus.as_secs_f64() > self.max_secs
                // "...so long as the video was delivered within those 10
                // seconds": a slow transfer excuses the distraction.
                && s.video_load.as_secs_f64() <= self.max_secs
        })
    }
}

/// Filter 3: the soft rule — every video must be interacted with.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftRuleFilter;

impl ParticipantFilter for SoftRuleFilter {
    fn name(&self) -> &'static str {
        "soft"
    }

    fn drops(&self, sessions: &[VideoSession], _controls: &[&ControlRow]) -> bool {
        sessions.iter().any(|s| s.skipped)
    }
}

/// Filter 4: control questions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlFilter;

impl ParticipantFilter for ControlFilter {
    fn name(&self) -> &'static str {
        "control"
    }

    fn drops(&self, _sessions: &[VideoSession], controls: &[&ControlRow]) -> bool {
        controls.iter().any(|c| !c.passed)
    }
}

/// Outcome of running the pipeline over a campaign: Table 1's last three
/// columns plus the surviving participant set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterReport {
    /// Participants dropped by the engagement filters (actions + focus).
    pub engagement: usize,
    /// Participants dropped by the soft rule.
    pub soft: usize,
    /// Participants dropped by control questions.
    pub control: usize,
    /// Indices of participants whose responses are kept.
    pub kept: BTreeSet<usize>,
}

impl FilterReport {
    /// Total dropped.
    pub fn dropped(&self) -> usize {
        self.engagement + self.soft + self.control
    }
}

/// A filter pipeline: boxed filters applied in order. The `Send + Sync`
/// bounds let the streaming engine evaluate the same pipeline from
/// shard workers (every filter here is a plain `Copy` struct).
pub type FilterPipeline = Vec<Box<dyn ParticipantFilter + Send + Sync>>;

/// Bucket a participant lands in after the §4.3 pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Dropped by an engagement filter (actions or focus).
    Engagement,
    /// Dropped by the soft rule.
    Soft,
    /// Dropped by a failed control question.
    Control,
    /// Responses kept.
    Kept,
}

/// Streaming-friendly filter outcome counts: [`FilterReport`] minus the
/// materialized kept-index set, so a shard can carry it in O(1) memory
/// and merge by integer addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterTally {
    /// Participants dropped by the engagement filters (actions + focus).
    pub engagement: u64,
    /// Participants dropped by the soft rule.
    pub soft: u64,
    /// Participants dropped by control questions.
    pub control: u64,
    /// Participants whose responses are kept.
    pub kept: u64,
}

impl FilterTally {
    /// Fold one decision in.
    pub fn record(&mut self, d: FilterDecision) {
        match d {
            FilterDecision::Engagement => self.engagement += 1,
            FilterDecision::Soft => self.soft += 1,
            FilterDecision::Control => self.control += 1,
            FilterDecision::Kept => self.kept += 1,
        }
    }

    /// Fold another shard's tally in (exact integer adds).
    pub fn merge(&mut self, other: &FilterTally) {
        self.engagement += other.engagement;
        self.soft += other.soft;
        self.control += other.control;
        self.kept += other.kept;
    }

    /// Total dropped.
    pub fn dropped(&self) -> u64 {
        self.engagement + self.soft + self.control
    }

    /// The counts a materializing [`FilterReport`] reduces to — the
    /// overlap the streaming-equivalence tests compare.
    pub fn of_report(report: &FilterReport) -> FilterTally {
        FilterTally {
            engagement: report.engagement as u64,
            soft: report.soft as u64,
            control: report.control as u64,
            kept: report.kept.len() as u64,
        }
    }
}

/// The paper's default pipeline, in its order. A participant is
/// attributed to the *first* filter that catches them.
pub fn paper_pipeline() -> FilterPipeline {
    vec![
        Box::new(ActionsFilter::default()),
        Box::new(FocusFilter::default()),
        Box::new(SoftRuleFilter),
        Box::new(ControlFilter),
    ]
}

/// Run the pipeline over one participant and bump the filter counters.
///
/// Both engines funnel through this: the materializing [`filter_timeline`]
/// per retained participant, the streaming engine inline per shard — which
/// is what keeps their `counter_fingerprint`s byte-identical.
pub fn decide(
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    sessions: &[VideoSession],
    controls: &[&ControlRow],
) -> FilterDecision {
    let caught = filters.iter().find(|f| f.drops(sessions, controls));
    let decision = match caught.map(|f| f.name()) {
        Some("engagement") => FilterDecision::Engagement,
        Some("soft") => FilterDecision::Soft,
        Some("control") => FilterDecision::Control,
        Some(other) => unreachable!("unknown filter bucket {other}"),
        None => FilterDecision::Kept,
    };
    if let Some(name) = caught.map(|f| f.name()) {
        eyeorg_obs::metrics::CORE_FILTER_DROPS.add(name, 1);
    } else {
        eyeorg_obs::metrics::CORE_PARTICIPANTS_KEPT.incr();
    }
    decision
}

fn run_pipeline(
    n_participants: usize,
    sessions_of: impl Fn(usize) -> Vec<VideoSession>,
    controls: &[ControlRow],
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
) -> FilterReport {
    let mut report = FilterReport {
        engagement: 0,
        soft: 0,
        control: 0,
        kept: BTreeSet::new(),
    };
    for pi in 0..n_participants {
        let sessions = sessions_of(pi);
        let ctrl: Vec<&ControlRow> =
            controls.iter().filter(|c| c.participant == pi).collect();
        match decide(filters, &sessions, &ctrl) {
            FilterDecision::Engagement => report.engagement += 1,
            FilterDecision::Soft => report.soft += 1,
            FilterDecision::Control => report.control += 1,
            FilterDecision::Kept => {
                report.kept.insert(pi);
            }
        }
    }
    report
}

/// Apply the filter pipeline to a timeline campaign.
pub fn filter_timeline(
    campaign: &TimelineCampaign,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
) -> FilterReport {
    run_pipeline(
        campaign.participants.len(),
        |pi| crate::campaign::sessions_of(&campaign.rows, pi),
        &campaign.controls,
        filters,
    )
}

/// Apply the filter pipeline to an A/B campaign.
pub fn filter_ab(
    campaign: &AbCampaign,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
) -> FilterReport {
    run_pipeline(
        campaign.participants.len(),
        |pi| crate::campaign::ab_sessions_of(&campaign.rows, pi),
        &campaign.controls,
        filters,
    )
}

/// The wisdom-of-the-crowd response filter: per-video UPLT values kept
/// within the `[lo_pct, hi_pct]` percentile band (the paper's final
/// strategy uses 25–75).
pub fn wisdom_band(responses: &[f64], lo_pct: f64, hi_pct: f64) -> Vec<f64> {
    percentile_band(responses, lo_pct, hi_pct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_net::SimDuration;

    fn session(actions: u32, oof_secs: f64, load_secs: f64, skipped: bool) -> VideoSession {
        VideoSession {
            video_load: SimDuration::from_secs_f64(load_secs),
            time_spent: SimDuration::from_secs(60),
            seeks: actions,
            plays: 0,
            pauses: 0,
            out_of_focus: SimDuration::from_secs_f64(oof_secs),
            skipped,
        }
    }

    #[test]
    fn actions_filter_threshold() {
        let f = ActionsFilter::default();
        assert_eq!(f.max_actions, 553);
        assert!(!f.drops(&[session(553, 0.0, 0.0, false)], &[]));
        assert!(f.drops(&[session(554, 0.0, 0.0, false)], &[]));
    }

    #[test]
    fn focus_filter_excuses_slow_transfers() {
        let f = FocusFilter::default();
        // 15s distracted with a fast video: dropped.
        assert!(f.drops(&[session(5, 15.0, 2.0, false)], &[]));
        // 15s distracted while the video itself took 30s to arrive: kept.
        assert!(!f.drops(&[session(5, 15.0, 30.0, false)], &[]));
        // Mild distraction: kept.
        assert!(!f.drops(&[session(5, 8.0, 2.0, false)], &[]));
    }

    #[test]
    fn soft_rule_drops_any_skip() {
        let f = SoftRuleFilter;
        assert!(!f.drops(&[session(5, 0.0, 1.0, false); 6], &[]));
        let mut sessions = vec![session(5, 0.0, 1.0, false); 5];
        sessions.push(session(0, 0.0, 1.0, true));
        assert!(f.drops(&sessions, &[]));
    }

    #[test]
    fn control_filter() {
        let f = ControlFilter;
        let pass = ControlRow { participant: 0, passed: true };
        let fail = ControlRow { participant: 0, passed: false };
        assert!(!f.drops(&[], &[&pass]));
        assert!(f.drops(&[], &[&pass, &fail]));
    }

    #[test]
    fn pipeline_attributes_to_first_matching_filter() {
        // A participant who both skipped a video and failed the control
        // counts under "soft" (the earlier filter).
        let filters = paper_pipeline();
        let controls = vec![ControlRow { participant: 0, passed: false }];
        let report = run_pipeline(
            1,
            |_| vec![session(3, 0.0, 1.0, true)],
            &controls,
            &filters,
        );
        assert_eq!(report.soft, 1);
        assert_eq!(report.control, 0);
        assert!(report.kept.is_empty());
    }

    #[test]
    fn clean_participants_kept() {
        let filters = paper_pipeline();
        let controls = vec![ControlRow { participant: 0, passed: true }];
        let report =
            run_pipeline(1, |_| vec![session(30, 2.0, 1.0, false); 6], &controls, &filters);
        assert_eq!(report.dropped(), 0);
        assert!(report.kept.contains(&0));
    }

    #[test]
    fn wisdom_band_trims_tails() {
        let mut responses: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        responses.push(100.0); // wild outlier
        let kept = wisdom_band(&responses, 25.0, 75.0);
        assert!(kept.iter().all(|&v| (6.0..=16.0).contains(&v)), "{kept:?}");
        assert!(!kept.contains(&100.0));
    }
}
