//! Regression tests for the degenerate analysis path: every response of
//! a site (or the whole campaign) filtered away must degrade to "zero
//! retained" — empty sample vectors, `None` aggregates, a renderable
//! export — never a panic.

use std::collections::BTreeSet;

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn quick_capture() -> CaptureConfig {
    CaptureConfig { repeats: 2, ..CaptureConfig::default() }
}

fn mini_timeline(n_participants: usize, seed: u64) -> TimelineCampaign {
    let sites = alexa_like(Seed(520), 4);
    let stimuli = timeline_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(521));
    run_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n_participants,
        &ExperimentConfig::default(),
        Seed(seed),
    )
}

/// A filter report that dropped everyone: the worst case of §4.3
/// filtering, which a small campaign with strict thresholds can reach.
fn everyone_dropped(campaign: &TimelineCampaign) -> FilterReport {
    FilterReport {
        engagement: campaign.participants.len(),
        soft: 0,
        control: 0,
        kept: BTreeSet::new(),
    }
}

#[test]
fn analysis_survives_all_responses_filtered() {
    let c = mini_timeline(12, 30);
    let report = everyone_dropped(&c);
    let n_sites = c.stimuli_names.len();

    // Raw and banded sample selection: every site ends up empty, and
    // the band filter must not choke on the empty inputs.
    for band in [None, Some((25.0, 75.0)), Some((10.0, 90.0))] {
        let samples = uplt_samples(&c, &report, band);
        assert_eq!(samples.len(), n_sites);
        assert!(samples.iter().all(Vec::is_empty), "no kept participant, no samples");

        let means = mean_uplt(&c, &report, band);
        assert_eq!(means, vec![None; n_sites], "empty sites aggregate to None");
        let stdevs = uplt_stdev(&c, &report, band);
        assert_eq!(stdevs, vec![None; n_sites]);
    }

    let components = eyeorg_core::analysis::uplt_components(&c, &report);
    assert!(components.iter().all(|(a, b, h)| {
        a.is_empty() && b.is_empty() && h.is_empty()
    }));

    // The export path renders rows with kept=false throughout.
    let export = export_timeline("degenerate", &c, &report);
    let json = to_json(&export);
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    for row in v["rows"].as_array().expect("rows array") {
        assert_eq!(row["kept"].as_bool(), Some(false));
    }
}

#[test]
fn single_site_with_zero_retained_degrades_not_panics() {
    // Mixed case: keep some participants, but band-filter a site whose
    // kept responses all sit at the extremes of an inverted band — the
    // per-site vector is empty while others are not.
    let c = mini_timeline(12, 31);
    let report = filter_timeline(&c, &paper_pipeline());
    // An inverted band keeps nothing anywhere — per-site zero retained.
    let samples = uplt_samples(&c, &report, Some((75.0, 25.0)));
    assert!(samples.iter().all(Vec::is_empty));
    let means = mean_uplt(&c, &report, Some((75.0, 25.0)));
    assert!(means.iter().all(Option::is_none));
}

#[test]
fn ab_analysis_survives_all_votes_filtered() {
    let sites = alexa_like(Seed(530), 3);
    let stimuli =
        protocol_ab_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(531));
    let c = run_ab_campaign(stimuli, &CrowdFlower, 10, &ExperimentConfig::default(), Seed(32));
    let report = FilterReport {
        engagement: c.participants.len(),
        soft: 0,
        control: 0,
        kept: BTreeSet::new(),
    };
    let tallies = ab_tallies(&c, &report);
    assert_eq!(tallies.len(), c.stimuli_names.len());
    for t in &tallies {
        assert_eq!(t.total(), 0);
        assert_eq!(t.agreement(), None, "no votes, no agreement");
        assert_eq!(t.score(), None);
        assert_eq!(t.nd_rate(), None);
    }
    // Δ-bucketed agreement over all-empty tallies: every bucket empty.
    let deltas = vec![0.5; tallies.len()];
    let med = agreement_by_delta(&tallies, &deltas, &[0.0, 1.0, 2.0]);
    assert!(med.iter().all(Option::is_none));

    let export = export_ab("degenerate-ab", &c, &report);
    let json = to_json(&export);
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
}
